package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Sub-request outcome labels for hyperrouter_subrequests_total. Every
// replica-bound request (shard attempt, hedge, retry, upload fan-out)
// lands in exactly one bucket, so the sum reconciles against the
// replicas' own hyperline_http_responses_total — minus outcome="error",
// which never produced a replica response.
const (
	outcomeOK       = "ok"       // 2xx
	outcomeShed     = "shed"     // 429
	outcomeDeadline = "deadline" // 504
	outcomeNotFound = "notfound" // 404
	outcomeClient   = "client"   // other 4xx
	outcomeUpstream = "upstream" // other 5xx
	outcomeError    = "error"    // transport failure, no response
)

// outcomeOf buckets a replica response status.
func outcomeOf(status int) string {
	switch {
	case status >= 200 && status < 300:
		return outcomeOK
	case status == http.StatusTooManyRequests:
		return outcomeShed
	case status == http.StatusGatewayTimeout:
		return outcomeDeadline
	case status == http.StatusNotFound:
		return outcomeNotFound
	case status >= 400 && status < 500:
		return outcomeClient
	default:
		return outcomeUpstream
	}
}

// attemptOutcome buckets one attempt, transport failures included.
func attemptOutcome(res attemptResult) string {
	if res.err != nil {
		return outcomeError
	}
	return outcomeOf(res.status)
}

// rmetrics is the router's counter set, exposed in Prometheus text
// exposition format 0.0.4 like the replicas' /metrics.
type rmetrics struct {
	mu          sync.Mutex
	responses   map[int]int64
	subrequests map[string]int64
	queries     int64
	shards      int64
	ingests     int64
	hedges      int64
	hedgeWins   int64
	retries     int64
	sheds       int64
}

func (m *rmetrics) countQuery(shards int) {
	m.mu.Lock()
	m.queries++
	m.shards += int64(shards)
	m.mu.Unlock()
}

func (m *rmetrics) countSubrequest(outcome string) {
	m.mu.Lock()
	if m.subrequests == nil {
		m.subrequests = make(map[string]int64)
	}
	m.subrequests[outcome]++
	m.mu.Unlock()
}

func (m *rmetrics) countIngest() { m.mu.Lock(); m.ingests++; m.mu.Unlock() }

func (m *rmetrics) countHedge()    { m.mu.Lock(); m.hedges++; m.mu.Unlock() }
func (m *rmetrics) countHedgeWin() { m.mu.Lock(); m.hedgeWins++; m.mu.Unlock() }
func (m *rmetrics) countRetry()    { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *rmetrics) countShed()     { m.mu.Lock(); m.sheds++; m.mu.Unlock() }

func (m *rmetrics) countResponse(code int) {
	m.mu.Lock()
	if m.responses == nil {
		m.responses = make(map[int]int64)
	}
	m.responses[code]++
	m.mu.Unlock()
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the route table with the response-code counter.
// /metrics scrapes, /healthz probes, and /v1/replicas control traffic
// (replica heartbeats) are not counted, so hyperrouter_requests_total
// reconciles exactly with the requests a load generator sent.
func (m *rmetrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics", "/healthz", "/v1/replicas":
			h.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, r)
		m.countResponse(rec.code)
	})
}

// metricWriter accumulates one exposition document.
type metricWriter struct {
	b strings.Builder
}

func (w *metricWriter) header(name, help, typ string) {
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (w *metricWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&w.b, "%s%s %g\n", name, labels, v)
}

// handleMetrics renders the router's exposition: fan-out, hedge, retry,
// and shed counters, per-outcome sub-request counts, response codes,
// and replica health gauges.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &rt.metrics
	mw := &metricWriter{}

	m.mu.Lock()
	mw.header("hyperrouter_queries_total", "fanned-out /v2/query requests", "counter")
	mw.value("hyperrouter_queries_total", "", float64(m.queries))
	mw.header("hyperrouter_fanout_shards_total", "shards dispatched across all queries", "counter")
	mw.value("hyperrouter_fanout_shards_total", "", float64(m.shards))
	mw.header("hyperrouter_ingests_total", "fanned-out /v2/ingest requests", "counter")
	mw.value("hyperrouter_ingests_total", "", float64(m.ingests))
	mw.header("hyperrouter_hedges_total", "hedged duplicate sub-requests issued", "counter")
	mw.value("hyperrouter_hedges_total", "", float64(m.hedges))
	mw.header("hyperrouter_hedge_wins_total", "hedged sub-requests whose answer was used", "counter")
	mw.value("hyperrouter_hedge_wins_total", "", float64(m.hedgeWins))
	mw.header("hyperrouter_retries_total", "failover retries to another owner", "counter")
	mw.value("hyperrouter_retries_total", "", float64(m.retries))
	mw.header("hyperrouter_shed_total", "router-level 429 answers (all owners shed)", "counter")
	mw.value("hyperrouter_shed_total", "", float64(m.sheds))

	mw.header("hyperrouter_subrequests_total", "replica-bound sub-requests by outcome", "counter")
	outs := make([]string, 0, len(m.subrequests))
	for o := range m.subrequests {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		mw.value("hyperrouter_subrequests_total", fmt.Sprintf("outcome=%q", o), float64(m.subrequests[o]))
	}

	mw.header("hyperrouter_requests_total", "client-facing responses by status code", "counter")
	codes := make([]int, 0, len(m.responses))
	for c := range m.responses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		mw.value("hyperrouter_requests_total", fmt.Sprintf("code=%q", fmt.Sprint(c)), float64(m.responses[c]))
	}
	m.mu.Unlock()

	healthy, unhealthy := 0, 0
	for _, st := range rt.Replicas() {
		if st.Healthy {
			healthy++
		} else {
			unhealthy++
		}
	}
	mw.header("hyperrouter_replicas", "known replicas by health state", "gauge")
	mw.value("hyperrouter_replicas", `state="healthy"`, float64(healthy))
	mw.value("hyperrouter_replicas", `state="unhealthy"`, float64(unhealthy))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(mw.b.String()))
}
