package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(nodes)
	r2 := NewRing([]string{"http://c", "http://b", "http://a", "http://a", ""})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		o1 := r1.Owners(key, 2)
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("Owners(%q, 2) = %v, want 2 distinct nodes", key, o1)
		}
		// Placement is a pure function of the member set: order and
		// duplicates in the input must not matter.
		if o2 := r2.Owners(key, 2); !reflect.DeepEqual(o1, o2) {
			t.Fatalf("Owners(%q) differ across equivalent rings: %v vs %v", key, o1, o2)
		}
	}
	// n is clamped to the cluster size; every member shows up.
	if all := r1.Owners("k", 10); len(all) != 3 {
		t.Fatalf("Owners(k, 10) = %v, want all 3 members", all)
	}
	if empty := NewRing(nil).Owners("k", 2); empty != nil {
		t.Fatalf("empty ring returned owners %v", empty)
	}
}

// TestRingMinimalReshuffle is the consistent-hashing property the tier
// relies on: removing one member only re-homes the keys it owned —
// every other key keeps its primary, so replica caches stay warm
// through membership churn.
func TestRingMinimalReshuffle(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	before := NewRing(nodes)
	after := NewRing(nodes[:3]) // http://d leaves
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		pb := before.Owners(key, 1)[0]
		pa := after.Owners(key, 1)[0]
		if pb == "http://d" {
			if pa == "http://d" {
				t.Fatalf("%q still owned by a removed member", key)
			}
			continue
		}
		if pa != pb {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the leaver changed primary on its departure", moved)
	}
}

// TestRingSpread sanity-checks the virtual-node fan: with 3 members no
// node should own a wildly lopsided share of primaries.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"})
	counts := map[string]int{}
	const keys = 600
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("dataset-%d", i), 1)[0]]++
	}
	for node, c := range counts {
		if c < keys/6 || c > keys*2/3 {
			t.Fatalf("node %s owns %d/%d primaries — spread is broken: %v", node, c, keys, counts)
		}
	}
}
