package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
	"hyperline/internal/par"
)

func randomH(r *rand.Rand, n, m int) *hg.Hypergraph {
	edges := make([][]uint32, m)
	for e := range edges {
		size := 1 + r.Intn(6)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(r.Intn(n))] = true
		}
		for v := range seen {
			edges[e] = append(edges[e], v)
		}
	}
	return hg.FromEdgeSlices(edges, n)
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestMultiplyHashMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 20, 25)
		a, b := EdgeView(h), VertexView(h)
		dense, err := Multiply(a, b, par.Options{Workers: 3})
		if err != nil {
			return false
		}
		hash, err := MultiplyHash(a, b, par.Options{Workers: 3})
		if err != nil {
			return false
		}
		return matricesEqual(dense, hash)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyHashUpperMatchesDenseUpper(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 15, 20)
		a, b := EdgeView(h), VertexView(h)
		dense, err := MultiplyUpper(a, b, par.Options{})
		if err != nil {
			return false
		}
		hash, err := MultiplyHashUpper(a, b, par.Options{})
		if err != nil {
			return false
		}
		return matricesEqual(dense, hash)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyHashDimensionMismatch(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Off: []int64{0, 0, 0}}
	b := &Matrix{Rows: 2, Cols: 2, Off: []int64{0, 0, 0}}
	if _, err := MultiplyHash(a, b, par.Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestHashAccumulatorGrowth(t *testing.T) {
	acc := newHashAccumulator(2)
	// Insert far beyond initial capacity, with repeats.
	for round := 0; round < 3; round++ {
		for k := uint32(0); k < 1000; k++ {
			acc.add(k, 1)
		}
	}
	cols, vals := acc.drain(nil, nil)
	if len(cols) != 1000 {
		t.Fatalf("drained %d entries, want 1000", len(cols))
	}
	seen := map[uint32]uint32{}
	for i, c := range cols {
		seen[c] = vals[i]
	}
	for k := uint32(0); k < 1000; k++ {
		if seen[k] != 3 {
			t.Fatalf("col %d accumulated %d, want 3", k, seen[k])
		}
	}
	// After drain the table must be reusable and empty.
	acc.add(7, 5)
	cols, vals = acc.drain(nil, nil)
	if len(cols) != 1 || cols[0] != 7 || vals[0] != 5 {
		t.Fatalf("reuse after drain broken: %v %v", cols, vals)
	}
}

func TestFilterHashPipelineMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	h := randomH(r, 30, 40)
	a, b := EdgeView(h), VertexView(h)
	dense, err := MultiplyUpper(a, b, par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := MultiplyHashUpper(a, b, par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 4; s++ {
		de := FilterS(dense, s)
		he := FilterS(hash, s)
		if len(de) != len(he) {
			t.Fatalf("s=%d: %d vs %d edges", s, len(de), len(he))
		}
		for i := range de {
			if de[i] != he[i] {
				t.Fatalf("s=%d: edge %d differs", s, i)
			}
		}
	}
}
