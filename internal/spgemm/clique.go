package spgemm

import (
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// CliqueExpansionMatrix computes the weighted clique-expansion
// adjacency matrix W = HHᵀ − D_V of §III-H: W[i,j] is the number of
// hyperedges containing both vertices i and j, and the diagonal
// (vertex degrees) is removed. As the paper stresses, W can be very
// dense — this explicit materialization exists to demonstrate the
// memory cost the s-clique approach avoids, and as a test oracle for
// the dual-hypergraph path.
func CliqueExpansionMatrix(h *hg.Hypergraph, opt par.Options) (*Matrix, error) {
	w, err := Multiply(VertexView(h), EdgeView(h), opt)
	if err != nil {
		return nil, err
	}
	// Subtract D_V: drop diagonal entries in place.
	out := &Matrix{Rows: w.Rows, Cols: w.Cols, Off: make([]int64, w.Rows+1)}
	cols := make([]uint32, 0, len(w.Col))
	vals := make([]uint32, 0, len(w.Val))
	for i := 0; i < w.Rows; i++ {
		rc, rv := w.Row(i)
		for k, j := range rc {
			if int(j) == i {
				continue
			}
			cols = append(cols, j)
			vals = append(vals, rv[k])
		}
		out.Off[i+1] = int64(len(cols))
	}
	out.Col = cols
	out.Val = vals
	return out, nil
}
