package spgemm_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spgemm"
)

func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

func TestEdgeViewIncidence(t *testing.T) {
	// Figure 3's incidence matrix: H is 6x4 (vertices × edges); the
	// edge view is its transpose.
	h := paperExample()
	ht := spgemm.EdgeView(h)
	if ht.Rows != 4 || ht.Cols != 6 {
		t.Fatalf("Hᵀ is %dx%d, want 4x6", ht.Rows, ht.Cols)
	}
	if ht.NNZ() != 13 {
		t.Fatalf("nnz = %d, want 13", ht.NNZ())
	}
	// Edge 3 (id 2) contains all of a..e.
	for v := 0; v < 5; v++ {
		if ht.At(2, v) != 1 {
			t.Fatalf("H[%d,2] missing", v)
		}
	}
	if ht.At(2, 5) != 0 {
		t.Fatal("edge 3 should not contain f")
	}
	hv := spgemm.VertexView(h)
	if hv.Rows != 6 || hv.Cols != 4 {
		t.Fatalf("H is %dx%d, want 6x4", hv.Rows, hv.Cols)
	}
}

func TestMultiplyAdjacency(t *testing.T) {
	// L = HᵀH: L[i,j] = inc(ei, ej); diagonal = edge sizes (§II-B).
	h := paperExample()
	l, err := spgemm.Multiply(spgemm.EdgeView(h), spgemm.VertexView(h), par.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows != 4 || l.Cols != 4 {
		t.Fatalf("L is %dx%d, want 4x4", l.Rows, l.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var want uint32
			if i == j {
				want = uint32(h.EdgeSize(uint32(i)))
			} else {
				want = uint32(h.Inc(uint32(i), uint32(j)))
			}
			if got := l.At(i, j); got != want {
				t.Fatalf("L[%d,%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a := &spgemm.Matrix{Rows: 2, Cols: 3, Off: []int64{0, 0, 0}}
	b := &spgemm.Matrix{Rows: 2, Cols: 2, Off: []int64{0, 0, 0}}
	if _, err := spgemm.Multiply(a, b, par.Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestMultiplyUpperHalvesStorage(t *testing.T) {
	h := paperExample()
	full, err := spgemm.Multiply(spgemm.EdgeView(h), spgemm.VertexView(h), par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	upper, err := spgemm.MultiplyUpper(spgemm.EdgeView(h), spgemm.VertexView(h), par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if upper.NNZ() >= full.NNZ() {
		t.Fatalf("upper nnz %d not below full nnz %d", upper.NNZ(), full.NNZ())
	}
	for i := 0; i < upper.Rows; i++ {
		cols, vals := upper.Row(i)
		for k, j := range cols {
			if int(j) <= i {
				t.Fatalf("upper product stored (%d,%d)", i, j)
			}
			if vals[k] != full.At(i, int(j)) {
				t.Fatalf("upper value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFilterMatchesAlgorithm2(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		edges := make([][]uint32, 30)
		for e := range edges {
			size := 1 + r.Intn(6)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(25))] = true
			}
			for v := range seen {
				edges[e] = append(edges[e], v)
			}
		}
		h := hg.FromEdgeSlices(edges, 25)
		s := 1 + int(sRaw%4)
		want, _, _ := core.SLineEdges(context.Background(), h, s, core.Config{})
		got, err := spgemm.SLineFilter(h, s, par.Options{Workers: 3})
		if err != nil {
			return false
		}
		gotUpper, err := spgemm.SLineFilterUpper(h, s, par.Options{Workers: 3})
		if err != nil {
			return false
		}
		if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			return false
		}
		if !(len(gotUpper) == 0 && len(want) == 0) && !reflect.DeepEqual(gotUpper, want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterSClamp(t *testing.T) {
	h := paperExample()
	l, err := spgemm.Multiply(spgemm.EdgeView(h), spgemm.VertexView(h), par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spgemm.FilterS(l, 0), spgemm.FilterS(l, 1); !reflect.DeepEqual(got, want) {
		t.Fatal("s=0 should behave as s=1")
	}
}

func TestMultiplyAssociativeSmall(t *testing.T) {
	// (A·B) computed with 1 worker equals many workers.
	h := paperExample()
	a, b := spgemm.EdgeView(h), spgemm.VertexView(h)
	l1, err := spgemm.Multiply(a, b, par.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l8, err := spgemm.Multiply(a, b, par.Options{Workers: 8, Strategy: par.Cyclic})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l1.Rows; i++ {
		for j := 0; j < l1.Cols; j++ {
			if l1.At(i, j) != l8.At(i, j) {
				t.Fatalf("worker count changed product at (%d,%d)", i, j)
			}
		}
	}
}
