package spgemm_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/core"
	"hyperline/internal/hg"
	"hyperline/internal/par"
	"hyperline/internal/spgemm"
)

// randomH mirrors the generator of the package-internal hash tests for
// the external (core-importing) test package.
func randomH(r *rand.Rand, n, m int) *hg.Hypergraph {
	edges := make([][]uint32, m)
	for e := range edges {
		size := 1 + r.Intn(6)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(r.Intn(n))] = true
		}
		for v := range seen {
			edges[e] = append(edges[e], v)
		}
	}
	return hg.FromEdgeSlices(edges, n)
}

func TestCliqueExpansionMatrixExample(t *testing.T) {
	h := paperExample()
	w, err := spgemm.CliqueExpansionMatrix(h, par.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Rows != 6 || w.Cols != 6 {
		t.Fatalf("W is %dx%d, want 6x6", w.Rows, w.Cols)
	}
	// W[i,j] = adj(i,j); diagonal removed.
	for i := 0; i < 6; i++ {
		if w.At(i, i) != 0 {
			t.Fatalf("diagonal W[%d,%d] = %d, want 0", i, i, w.At(i, i))
		}
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if got, want := w.At(i, j), uint32(h.Adj(uint32(i), uint32(j))); got != want {
				t.Fatalf("W[%d,%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	// adj(b,c) = 3 (§II).
	if w.At(1, 2) != 3 {
		t.Fatalf("W[b,c] = %d, want 3", w.At(1, 2))
	}
}

// TestCliqueExpansionDuality verifies §III-H: thresholding W at s gives
// the s-clique graph, which equals the s-line graph of the dual.
func TestCliqueExpansionDuality(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 18, 22)
		s := 1 + int(sRaw%4)
		w, err := spgemm.CliqueExpansionMatrix(h, par.Options{Workers: 2})
		if err != nil {
			return false
		}
		fromW := spgemm.FilterS(w, s)
		fromDual, _, _ := core.SLineEdges(context.Background(), h.Dual(), s, core.Config{})
		if len(fromW) == 0 && len(fromDual) == 0 {
			return true
		}
		return reflect.DeepEqual(fromW, fromDual)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
