// Package spgemm implements the sparse general matrix-matrix
// multiplication (SpGEMM) baseline the paper compares against in
// §VI-G: a Gustavson row-wise CSR SpGEMM that computes the hyperedge
// adjacency matrix L = HᵀH, followed by an s-filtration extracting the
// s-line graph edge list.
//
// Two variants mirror the paper's Figure 11: Filter computes and
// materializes the full product before filtering, and FilterUpper
// restricts accumulation to the upper triangle (half the work), as the
// authors' modified SpGEMM library does. Both must materialize the
// product matrix — the structural disadvantage versus Algorithm 2,
// which filters on the fly and stores nothing.
package spgemm

import (
	"fmt"
	"sort"

	"hyperline/internal/graph"
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

// Matrix is a sparse matrix in CSR form with uint32 integer values.
type Matrix struct {
	Rows, Cols int
	Off        []int64
	Col        []uint32
	Val        []uint32
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int64 { return int64(len(m.Col)) }

// Row returns the column indices and values of row i.
func (m *Matrix) Row(i int) ([]uint32, []uint32) {
	lo, hi := m.Off[i], m.Off[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns the value at (i, j), 0 when not stored. Linear scan —
// intended for tests.
func (m *Matrix) At(i, j int) uint32 {
	cols, vals := m.Row(i)
	for k, c := range cols {
		if int(c) == j {
			return vals[k]
		}
	}
	return 0
}

// EdgeView returns Hᵀ as a CSR matrix: rows are hyperedges, columns
// are vertices, all values 1.
func EdgeView(h *hg.Hypergraph) *Matrix {
	m := &Matrix{Rows: h.NumEdges(), Cols: h.NumVertices()}
	m.Off = make([]int64, m.Rows+1)
	for e := 0; e < m.Rows; e++ {
		m.Off[e+1] = m.Off[e] + int64(h.EdgeSize(uint32(e)))
	}
	m.Col = make([]uint32, m.Off[m.Rows])
	m.Val = make([]uint32, m.Off[m.Rows])
	for e := 0; e < m.Rows; e++ {
		copy(m.Col[m.Off[e]:], h.EdgeVertices(uint32(e)))
		for k := m.Off[e]; k < m.Off[e+1]; k++ {
			m.Val[k] = 1
		}
	}
	return m
}

// VertexView returns H as a CSR matrix: rows are vertices, columns are
// hyperedges, all values 1. VertexView(h) is the transpose of
// EdgeView(h).
func VertexView(h *hg.Hypergraph) *Matrix {
	return EdgeView(h.Dual())
}

// Multiply computes C = A·B with Gustavson's row-wise algorithm,
// parallel over the rows of A, using one dense accumulator (SPA) per
// worker. Column order within each output row follows first-touch
// order, as is conventional for Gustavson SpGEMM.
func Multiply(a, b *Matrix, opt par.Options) (*Matrix, error) {
	return multiply(a, b, opt, false)
}

// MultiplyUpper computes only the strict upper triangle of C = A·B
// (entries with column > row). A must be square-compatible with the
// output (Rows(A) and Cols(B) index the same space), which holds for
// L = HᵀH.
func MultiplyUpper(a, b *Matrix, opt par.Options) (*Matrix, error) {
	return multiply(a, b, opt, true)
}

func multiply(a, b *Matrix, opt par.Options, upper bool) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	rows := a.Rows
	w := opt.EffectiveWorkers()
	type spa struct {
		val     []uint32
		touched []uint32
	}
	spas := make([]*spa, w)
	outCols := make([][]uint32, rows)
	outVals := make([][]uint32, rows)

	par.For(rows, opt, func(worker, i int) {
		sp := spas[worker]
		if sp == nil {
			sp = &spa{val: make([]uint32, b.Cols)}
			spas[worker] = sp
		}
		touched := sp.touched[:0]
		aCols, aVals := a.Row(i)
		for k, ak := range aCols {
			av := aVals[k]
			bCols, bVals := b.Row(int(ak))
			for t, j := range bCols {
				if upper && int(j) <= i {
					continue
				}
				if sp.val[j] == 0 {
					touched = append(touched, j)
				}
				sp.val[j] += av * bVals[t]
			}
		}
		cols := make([]uint32, len(touched))
		vals := make([]uint32, len(touched))
		for t, j := range touched {
			cols[t] = j
			vals[t] = sp.val[j]
			sp.val[j] = 0
		}
		outCols[i], outVals[i] = cols, vals
		sp.touched = touched
	})

	c := &Matrix{Rows: rows, Cols: b.Cols, Off: make([]int64, rows+1)}
	for i := 0; i < rows; i++ {
		c.Off[i+1] = c.Off[i] + int64(len(outCols[i]))
	}
	c.Col = make([]uint32, c.Off[rows])
	c.Val = make([]uint32, c.Off[rows])
	for i := 0; i < rows; i++ {
		copy(c.Col[c.Off[i]:], outCols[i])
		copy(c.Val[c.Off[i]:], outVals[i])
	}
	return c, nil
}

// FilterS extracts the s-line graph edge list from the (full or upper)
// hyperedge adjacency matrix L = HᵀH: off-diagonal entries with value
// ≥ s, reported once per unordered pair with U < V, sorted.
func FilterS(l *Matrix, s int) []graph.Edge {
	if s < 1 {
		s = 1
	}
	var edges []graph.Edge
	for i := 0; i < l.Rows; i++ {
		cols, vals := l.Row(i)
		for k, j := range cols {
			if int(j) <= i {
				continue // diagonal (edge size) and lower triangle
			}
			if int(vals[k]) >= s {
				edges = append(edges, graph.Edge{U: uint32(i), V: j, W: vals[k]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// SLineFilter computes the s-line graph edge list via full SpGEMM +
// filtration ("SpGEMM+Filter" in Figure 11): L = HᵀH is materialized in
// full, then filtered.
func SLineFilter(h *hg.Hypergraph, s int, opt par.Options) ([]graph.Edge, error) {
	l, err := Multiply(EdgeView(h), VertexView(h), opt)
	if err != nil {
		return nil, err
	}
	return FilterS(l, s), nil
}

// SLineFilterUpper computes the s-line graph edge list via
// upper-triangular SpGEMM + filtration ("SpGEMM+Filter+Upper" in
// Figure 11): only entries above the diagonal are accumulated and
// materialized, halving the multiply work.
func SLineFilterUpper(h *hg.Hypergraph, s int, opt par.Options) ([]graph.Edge, error) {
	l, err := MultiplyUpper(EdgeView(h), VertexView(h), opt)
	if err != nil {
		return nil, err
	}
	return FilterS(l, s), nil
}
