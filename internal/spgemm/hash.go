package spgemm

import (
	"fmt"

	"hyperline/internal/par"
)

// MultiplyHash computes C = A·B with Gustavson's row-wise algorithm
// using a per-worker open-addressing hash accumulator instead of a
// dense sparse accumulator. This mirrors the hash-based SpGEMM of
// Nagasaka et al., the library the paper benchmarks against in §VI-G:
// hash accumulation wins when output rows are much sparser than the
// column dimension (no O(cols) allocation per worker), and loses to
// the dense SPA on dense rows.
func MultiplyHash(a, b *Matrix, opt par.Options) (*Matrix, error) {
	return multiplyHash(a, b, opt, false)
}

// MultiplyHashUpper is MultiplyHash restricted to the strict upper
// triangle of the output.
func MultiplyHashUpper(a, b *Matrix, opt par.Options) (*Matrix, error) {
	return multiplyHash(a, b, opt, true)
}

// hashAccumulator is a linear-probing hash table for (column, value)
// accumulation, grown on demand and reused across rows.
type hashAccumulator struct {
	keys []uint32 // column+1 (0 = empty)
	vals []uint32
	used []uint32 // occupied slot indices, for cheap reset
	mask uint32
}

func newHashAccumulator(capacity int) *hashAccumulator {
	size := 16
	for size < 2*capacity {
		size *= 2
	}
	return &hashAccumulator{
		keys: make([]uint32, size),
		vals: make([]uint32, size),
		mask: uint32(size - 1),
	}
}

func (h *hashAccumulator) add(col, delta uint32) {
	if len(h.used)*2 >= len(h.keys) {
		h.grow()
	}
	key := col + 1
	slot := (col * 0x9E3779B1) & h.mask
	for {
		switch h.keys[slot] {
		case 0:
			h.keys[slot] = key
			h.vals[slot] = delta
			h.used = append(h.used, slot)
			return
		case key:
			h.vals[slot] += delta
			return
		}
		slot = (slot + 1) & h.mask
	}
}

func (h *hashAccumulator) grow() {
	oldKeys, oldVals, oldUsed := h.keys, h.vals, h.used
	h.keys = make([]uint32, 2*len(oldKeys))
	h.vals = make([]uint32, 2*len(oldVals))
	h.mask = uint32(len(h.keys) - 1)
	h.used = h.used[:0]
	for _, slot := range oldUsed {
		col := oldKeys[slot] - 1
		// Re-insert without the growth check (capacity is ample).
		key := col + 1
		s := (col * 0x9E3779B1) & h.mask
		for h.keys[s] != 0 {
			s = (s + 1) & h.mask
		}
		h.keys[s] = key
		h.vals[s] = oldVals[slot]
		h.used = append(h.used, s)
	}
}

// drain appends the accumulated (col, val) pairs to the given slices
// in first-inserted order and resets the table.
func (h *hashAccumulator) drain(cols, vals []uint32) ([]uint32, []uint32) {
	for _, slot := range h.used {
		cols = append(cols, h.keys[slot]-1)
		vals = append(vals, h.vals[slot])
		h.keys[slot] = 0
	}
	h.used = h.used[:0]
	return cols, vals
}

func multiplyHash(a, b *Matrix, opt par.Options, upper bool) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	rows := a.Rows
	w := opt.EffectiveWorkers()
	accs := make([]*hashAccumulator, w)
	outCols := make([][]uint32, rows)
	outVals := make([][]uint32, rows)

	par.For(rows, opt, func(worker, i int) {
		acc := accs[worker]
		if acc == nil {
			acc = newHashAccumulator(64)
			accs[worker] = acc
		}
		aCols, aVals := a.Row(i)
		for k, ak := range aCols {
			av := aVals[k]
			bCols, bVals := b.Row(int(ak))
			for t, j := range bCols {
				if upper && int(j) <= i {
					continue
				}
				acc.add(j, av*bVals[t])
			}
		}
		outCols[i], outVals[i] = acc.drain(nil, nil)
	})

	c := &Matrix{Rows: rows, Cols: b.Cols, Off: make([]int64, rows+1)}
	for i := 0; i < rows; i++ {
		c.Off[i+1] = c.Off[i] + int64(len(outCols[i]))
	}
	c.Col = make([]uint32, c.Off[rows])
	c.Val = make([]uint32, c.Off[rows])
	for i := 0; i < rows; i++ {
		copy(c.Col[c.Off[i]:], outCols[i])
		copy(c.Val[c.Off[i]:], outVals[i])
	}
	return c, nil
}
