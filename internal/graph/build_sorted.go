package graph

import (
	"runtime"
	"sort"
	"sync/atomic"

	"hyperline/internal/par"
)

// BuildSorted is the parallel zero-copy fast path of Build for callers
// that guarantee the s-overlap stage's output invariants:
//
//   - every edge has U < V (no self-loops),
//   - edges are sorted by (U, V),
//   - (U, V) keys are unique (no duplicates to coalesce),
//   - all IDs are < numNodes.
//
// Under that contract no defensive copy, sort, or coalescing pass is
// needed, and every remaining stage — degree counting, the squeeze
// bitmap and prefix sum, CSR scatter, and per-row ordering — runs in
// parallel under opt. The input slice is read but never modified, and
// the result is identical to Build(numNodes, edges, squeeze).
//
// Callers that cannot vouch for the invariants must use Build, which
// keeps the defensive path.
func BuildSorted(numNodes int, edges []Edge, squeeze bool, opt par.Options) *Graph {
	// The parallel path is atomics-heavy; without real hardware
	// parallelism those atomics serialize into pure overhead, so clamp
	// by GOMAXPROCS and take the tight serial loops when only one
	// worker can actually run (still far cheaper than Build — no copy,
	// no sortedness check, no coalescing pass).
	if opt.EffectiveWorkers() == 1 || runtime.GOMAXPROCS(0) == 1 {
		return buildSortedSerial(numNodes, edges, squeeze)
	}
	g := &Graph{numEdges: len(edges)}
	chunks := par.Options{Workers: opt.Workers, Grain: chunkGrain(len(edges), opt)}

	// Degree count over the original ID space. Endpoints scatter
	// across nodes, so both sides use atomic adds; per-node degrees
	// fit int32 comfortably (they are bounded by numNodes).
	deg := make([]int32, numNodes)
	par.ForChunks(len(edges), chunks, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			atomic.AddInt32(&deg[e.U], 1)
			atomic.AddInt32(&deg[e.V], 1)
		}
	})

	// Squeeze: the presence bitmap is exactly deg > 0, and new IDs are
	// its parallel exclusive prefix sum.
	var newID []int64
	nodeOpt := par.Options{Workers: opt.Workers, Grain: chunkGrain(numNodes, opt)}
	if squeeze {
		newID = make([]int64, numNodes)
		par.ForChunks(numNodes, nodeOpt, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if deg[v] > 0 {
					newID[v] = 1
				}
			}
		})
		present := par.PrefixSum(newID, opt)
		g.numNodes = int(present)
		g.orig = make([]uint32, present)
		par.ForChunks(numNodes, nodeOpt, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if deg[v] > 0 {
					g.orig[newID[v]] = uint32(v)
				}
			}
		})
	} else {
		g.numNodes = numNodes
	}

	// CSR offsets: scatter (squeezed) degrees, then parallel prefix
	// sum.
	off := make([]int64, g.numNodes+1)
	if squeeze {
		par.ForChunks(numNodes, nodeOpt, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if deg[v] > 0 {
					off[newID[v]] = int64(deg[v])
				}
			}
		})
	} else {
		par.ForChunks(numNodes, nodeOpt, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				off[v] = int64(deg[v])
			}
		})
	}
	total := par.PrefixSum(off[:g.numNodes], opt)
	off[g.numNodes] = total
	g.off = off

	// Scatter both directions of every edge. Write positions are
	// claimed with per-node atomic cursors; the resulting intra-row
	// order is scheduling-dependent, but rows are re-sorted below and
	// neighbor IDs within a row are unique, so the final CSR is
	// deterministic.
	g.adj = make([]uint32, 2*len(edges))
	g.wgt = make([]uint32, 2*len(edges))
	cursor := make([]int64, g.numNodes)
	par.ForChunks(g.numNodes, nodeOpt, func(_, lo, hi int) {
		copy(cursor[lo:hi], g.off[lo:hi])
	})
	par.ForChunks(len(edges), chunks, func(_, lo, hi int) {
		for _, e := range edges[lo:hi] {
			u, v := int64(e.U), int64(e.V)
			if squeeze {
				u, v = newID[e.U], newID[e.V]
			}
			pu := atomic.AddInt64(&cursor[u], 1) - 1
			g.adj[pu], g.wgt[pu] = uint32(v), e.W
			pv := atomic.AddInt64(&cursor[v], 1) - 1
			g.adj[pv], g.wgt[pv] = uint32(u), e.W
		}
	})

	// Order each adjacency row (ids with parallel weights), one node
	// per task.
	par.For(g.numNodes, nodeOpt, func(_, u int) {
		lo, hi := g.off[u], g.off[u+1]
		row := rowSorter{ids: g.adj[lo:hi], ws: g.wgt[lo:hi]}
		if !sort.IsSorted(row) {
			sort.Sort(row)
		}
	})
	return g
}

// chunkGrain sizes blocked chunks so each worker sees a handful of
// claims over n items — coarse enough to amortize the claim, fine
// enough to balance.
func chunkGrain(n int, opt par.Options) int {
	w := opt.EffectiveWorkers()
	grain := n / (w * 8)
	if grain < 256 {
		grain = 256
	}
	return grain
}

// buildSortedSerial is BuildSorted's single-worker specialization.
func buildSortedSerial(numNodes int, edges []Edge, squeeze bool) *Graph {
	g := &Graph{numEdges: len(edges)}
	deg := make([]int32, numNodes)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	var newID []int64
	if squeeze {
		newID = make([]int64, numNodes)
		var next int64
		for v := 0; v < numNodes; v++ {
			if deg[v] > 0 {
				newID[v] = next
				next++
			}
		}
		g.orig = make([]uint32, next)
		g.numNodes = int(next)
		for v := 0; v < numNodes; v++ {
			if deg[v] > 0 {
				g.orig[newID[v]] = uint32(v)
			}
		}
	} else {
		g.numNodes = numNodes
	}

	off := make([]int64, g.numNodes+1)
	if squeeze {
		for v := 0; v < numNodes; v++ {
			if deg[v] > 0 {
				off[newID[v]+1] = int64(deg[v])
			}
		}
	} else {
		for v := 0; v < numNodes; v++ {
			off[v+1] = int64(deg[v])
		}
	}
	for i := 0; i < g.numNodes; i++ {
		off[i+1] += off[i]
	}
	g.off = off

	g.adj = make([]uint32, 2*len(edges))
	g.wgt = make([]uint32, 2*len(edges))
	cursor := make([]int64, g.numNodes)
	copy(cursor, off[:g.numNodes])
	for _, e := range edges {
		u, v := int64(e.U), int64(e.V)
		if squeeze {
			u, v = newID[e.U], newID[e.V]
		}
		g.adj[cursor[u]], g.wgt[cursor[u]] = uint32(v), e.W
		cursor[u]++
		g.adj[cursor[v]], g.wgt[cursor[v]] = uint32(u), e.W
		cursor[v]++
	}
	// No row-sort pass: the sequential scatter leaves every row sorted
	// by construction. Row x receives its backward neighbors first —
	// edges (u, x) precede edges (x, v) in the (U, V)-sorted input
	// because u < x — in ascending u, then its forward neighbors in
	// ascending v, and u < x < v splices the two runs in order. The
	// squeeze remap preserves this (newID is monotone). The parallel
	// path cannot rely on it: its atomic cursors scatter rows in
	// scheduling order.
	return g
}
