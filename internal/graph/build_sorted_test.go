package graph

import (
	"math/rand"
	"reflect"
	"runtime"
	"slices"
	"testing"

	"hyperline/internal/par"
)

// randomSortedEdges generates a BuildSorted-contract edge list: unique
// (U, V) keys with U < V, sorted, over numNodes IDs.
func randomSortedEdges(rng *rand.Rand, numNodes, want int) []Edge {
	seen := map[[2]uint32]bool{}
	edges := make([]Edge, 0, want)
	for len(edges) < want {
		u := uint32(rng.Intn(numNodes))
		v := uint32(rng.Intn(numNodes))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]uint32{u, v}] {
			continue
		}
		seen[[2]uint32{u, v}] = true
		edges = append(edges, Edge{U: u, V: v, W: uint32(rng.Intn(50) + 1)})
	}
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
	return edges
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.Squeezed() != b.Squeezed() {
		t.Fatalf("shape mismatch: (%d,%d,%v) vs (%d,%d,%v)",
			a.NumNodes(), a.NumEdges(), a.Squeezed(), b.NumNodes(), b.NumEdges(), b.Squeezed())
	}
	for u := 0; u < a.NumNodes(); u++ {
		if a.OrigID(uint32(u)) != b.OrigID(uint32(u)) {
			t.Fatalf("node %d: orig ID %d vs %d", u, a.OrigID(uint32(u)), b.OrigID(uint32(u)))
		}
		aIDs, aWs := a.Neighbors(uint32(u))
		bIDs, bWs := b.Neighbors(uint32(u))
		if !reflect.DeepEqual(aIDs, bIDs) || !reflect.DeepEqual(aWs, bWs) {
			t.Fatalf("node %d: adjacency mismatch\n%v %v\n%v %v", u, aIDs, aWs, bIDs, bWs)
		}
	}
}

func TestBuildSortedMatchesBuild(t *testing.T) {
	// Force real scheduler parallelism so the Workers > 1 cases take
	// the atomic parallel path even on single-CPU test machines
	// (BuildSorted clamps to the serial path when GOMAXPROCS is 1).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		numNodes := 2 + rng.Intn(200)
		maxEdges := numNodes * (numNodes - 1) / 2
		count := rng.Intn(maxEdges/2 + 1)
		edges := randomSortedEdges(rng, numNodes, count)
		for _, squeeze := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				safe := Build(numNodes, edges, squeeze)
				fast := BuildSorted(numNodes, edges, squeeze, par.Options{Workers: workers})
				graphsEqual(t, safe, fast)
			}
		}
	}
}

func TestBuildSortedEmpty(t *testing.T) {
	for _, squeeze := range []bool{false, true} {
		g := BuildSorted(0, nil, squeeze, par.Options{})
		if g.NumNodes() != 0 || g.NumEdges() != 0 {
			t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		g = BuildSorted(5, nil, squeeze, par.Options{})
		want := 5
		if squeeze {
			want = 0
		}
		if g.NumNodes() != want {
			t.Fatalf("squeeze=%v: %d nodes, want %d", squeeze, g.NumNodes(), want)
		}
	}
}

func TestBuildSortedDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := randomSortedEdges(rng, 64, 100)
	before := slices.Clone(edges)
	BuildSorted(64, edges, true, par.Options{Workers: 4})
	if !slices.Equal(edges, before) {
		t.Fatal("BuildSorted modified its input slice")
	}
}

// TestBuildCoalesceOrderIndependent is the regression test for the
// sorted-check/sort comparator mismatch: a duplicate (U, V) group must
// coalesce to its maximum weight whether the input arrives sorted (the
// sorted-check accepts it without tie-breaking on W) or shuffled (the
// fallback sort runs). Before the fix the fallback sort ordered
// duplicates by W descending while sorted input kept arrival order, so
// the two paths could only agree because coalescing takes the max —
// which this test pins down.
func TestBuildCoalesceOrderIndependent(t *testing.T) {
	sorted := []Edge{
		{U: 0, V: 1, W: 2}, {U: 0, V: 1, W: 7}, {U: 0, V: 1, W: 4},
		{U: 1, V: 2, W: 9}, {U: 1, V: 2, W: 1},
	}
	shuffled := []Edge{
		{U: 1, V: 2, W: 1}, {U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 9},
		{U: 0, V: 1, W: 7}, {U: 0, V: 1, W: 2},
	}
	reversed := []Edge{ // also exercise V > U normalization
		{U: 2, V: 1, W: 1}, {U: 1, V: 0, W: 4}, {U: 1, V: 2, W: 9},
		{U: 0, V: 1, W: 7}, {U: 1, V: 0, W: 2},
	}
	a := Build(3, sorted, false)
	b := Build(3, shuffled, false)
	c := Build(3, reversed, false)
	graphsEqual(t, a, b)
	graphsEqual(t, a, c)
	if w := a.Weight(0, 1); w != 7 {
		t.Fatalf("edge {0,1} weight = %d, want max 7", w)
	}
	if w := a.Weight(1, 2); w != 9 {
		t.Fatalf("edge {1,2} weight = %d, want max 9", w)
	}
}
