// Package graph provides the weighted undirected graph substrate that
// s-line graphs are materialized into (Stage 4 of the framework),
// including the ID-squeezing step that remaps the hypersparse hyperedge
// ID space to a contiguous node ID space.
package graph

import "sort"

// EdgeLess is the canonical (U, V) edge order used by Build's
// sorted-check and fallback sort and by the s-overlap stage's worker
// lists. W is deliberately not a tie-break: coalescing takes the
// maximum weight of a duplicate group, so the result is identical
// whether duplicates arrive sorted or not.
func EdgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Edge is one weighted undirected edge (U < V) produced by the
// s-overlap stage; W is the overlap weight.
type Edge struct {
	U, V uint32
	W    uint32
}

// Graph is an immutable weighted undirected graph in CSR form.
type Graph struct {
	numNodes int
	numEdges int // undirected edge count
	off      []int64
	adj      []uint32
	wgt      []uint32
	// orig[node] = ID in the pre-squeeze space; nil when the graph
	// was built without squeezing (IDs are the identity).
	orig []uint32
	// back owns out-of-heap storage backing the arrays; nil for
	// heap-backed graphs (see csr.go).
	back *backing
}

// Build materializes a graph from an s-line edge list over a node ID
// space of size numNodes. When squeeze is true, only nodes incident to
// at least one edge receive (contiguous) node IDs — the paper's Stage-4
// "ID squeezing" — and the mapping back to original IDs is retained.
// Duplicate edges are coalesced (keeping the maximum weight) and
// self-loops are ignored. The input slice is not modified.
func Build(numNodes int, edges []Edge, squeeze bool) *Graph {
	// Normalize to U < V and drop self-loops.
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	// The s-overlap stage emits edges already sorted by (U, V); only
	// pay for a sort when the caller hands us something else.
	sorted := sort.SliceIsSorted(norm, func(i, j int) bool {
		return EdgeLess(norm[i], norm[j])
	})
	if !sorted {
		sort.Slice(norm, func(i, j int) bool {
			return EdgeLess(norm[i], norm[j])
		})
	}
	// Coalesce duplicates in place (max weight wins).
	undirected := norm[:0]
	for _, e := range norm {
		if n := len(undirected); n > 0 && undirected[n-1].U == e.U && undirected[n-1].V == e.V {
			if e.W > undirected[n-1].W {
				undirected[n-1].W = e.W
			}
			continue
		}
		undirected = append(undirected, e)
	}

	g := &Graph{numEdges: len(undirected)}
	var newID []int64
	if squeeze {
		present := make([]bool, numNodes)
		for _, e := range undirected {
			present[e.U] = true
			present[e.V] = true
		}
		newID = make([]int64, numNodes)
		for v := range newID {
			newID[v] = -1
		}
		for v := 0; v < numNodes; v++ {
			if present[v] {
				newID[v] = int64(len(g.orig))
				g.orig = append(g.orig, uint32(v))
			}
		}
		g.numNodes = len(g.orig)
		for i := range undirected {
			undirected[i].U = uint32(newID[undirected[i].U])
			undirected[i].V = uint32(newID[undirected[i].V])
		}
	} else {
		g.numNodes = numNodes
	}

	deg := make([]int64, g.numNodes+1)
	for _, e := range undirected {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	g.off = deg
	for i := 0; i < g.numNodes; i++ {
		g.off[i+1] += g.off[i]
	}
	g.adj = make([]uint32, 2*len(undirected))
	g.wgt = make([]uint32, 2*len(undirected))
	cursor := make([]int64, g.numNodes)
	copy(cursor, g.off[:g.numNodes])
	for _, e := range undirected {
		g.adj[cursor[e.U]], g.wgt[cursor[e.U]] = e.V, e.W
		cursor[e.U]++
		g.adj[cursor[e.V]], g.wgt[cursor[e.V]] = e.U, e.W
		cursor[e.V]++
	}
	// Sort each adjacency row (ids with parallel weights). Squeezing
	// preserves relative order, so rows are already sorted on the
	// U side; the V side needs it.
	for u := 0; u < g.numNodes; u++ {
		lo, hi := g.off[u], g.off[u+1]
		row := rowSorter{ids: g.adj[lo:hi], ws: g.wgt[lo:hi]}
		if !sort.IsSorted(row) {
			sort.Sort(row)
		}
	}
	return g
}

type rowSorter struct {
	ids []uint32
	ws  []uint32
}

func (r rowSorter) Len() int           { return len(r.ids) }
func (r rowSorter) Less(i, j int) bool { return r.ids[i] < r.ids[j] }
func (r rowSorter) Swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.ws[i], r.ws[j] = r.ws[j], r.ws[i]
}

// NumNodes returns the number of nodes (post-squeeze if squeezed).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Squeezed reports whether ID squeezing was applied.
func (g *Graph) Squeezed() bool { return g.orig != nil }

// OrigID maps a node back to its pre-squeeze ID (identity when the
// graph was not squeezed).
func (g *Graph) OrigID(node uint32) uint32 {
	if g.orig == nil {
		return node
	}
	return g.orig[node]
}

// Neighbors returns the sorted neighbor IDs of u and, in parallel
// position, the edge weights. The slices alias internal storage.
func (g *Graph) Neighbors(u uint32) ([]uint32, []uint32) {
	lo, hi := g.off[u], g.off[u+1]
	return g.adj[lo:hi], g.wgt[lo:hi]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u uint32) int {
	return int(g.off[u+1] - g.off[u])
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v uint32) bool {
	ids, _ := g.Neighbors(u)
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == v
}

// Weight returns the weight of edge {u, v}, or 0 if absent.
func (g *Graph) Weight(u, v uint32) uint32 {
	ids, ws := g.Neighbors(u)
	for i, id := range ids {
		if id == v {
			return ws[i]
		}
	}
	return 0
}

// Edges returns the undirected edge list sorted by (U, V) with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.numNodes; u++ {
		ids, ws := g.Neighbors(uint32(u))
		for i, v := range ids {
			if uint32(u) < v {
				out = append(out, Edge{U: uint32(u), V: v, W: ws[i]})
			}
		}
	}
	return out
}
