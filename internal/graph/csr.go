package graph

import (
	"fmt"
	"runtime"
	"sync"
)

// The s-line graph is already stored as flat CSR arrays (see Build):
//
//	off  [numNodes+1]int64   row offsets into adj/wgt
//	adj  [2*numEdges]uint32  sorted neighbor IDs per row
//	wgt  [2*numEdges]uint32  parallel edge weights (overlap sizes)
//	orig [numNodes]uint32    pre-squeeze node IDs (absent if unsqueezed)
//
// which makes a Graph mmap-shaped: hgio.WriteCSR persists exactly these
// arrays and hgio.MapCSR aliases them back from a file without parsing.
// This file holds the raw-array accessors and the ownership story those
// serializers need.

// CSR exposes the graph's raw arrays. The slices alias internal storage
// and must not be modified. orig is nil when the graph was built
// without ID squeezing.
func (g *Graph) CSR() (off []int64, adj, wgt, orig []uint32) {
	return g.off, g.adj, g.wgt, g.orig
}

// FromCSR constructs a graph directly from its flat arrays (which it
// aliases, not copies — the caller transfers ownership). numEdges is
// the undirected edge count, so len(adj) must be 2*numEdges. Only the
// O(1) frame invariants are checked; content validation (sorted rows,
// in-range IDs) is the producer's responsibility, as with hg.FromCSR.
func FromCSR(numNodes, numEdges int, off []int64, adj, wgt, orig []uint32) (*Graph, error) {
	if len(off) != numNodes+1 {
		return nil, fmt.Errorf("graph: offsets length %d, want %d", len(off), numNodes+1)
	}
	if len(adj) != 2*numEdges || len(wgt) != len(adj) {
		return nil, fmt.Errorf("graph: adjacency length %d / weights %d, want %d for %d undirected edges",
			len(adj), len(wgt), 2*numEdges, numEdges)
	}
	if off[0] != 0 || off[numNodes] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: offsets endpoints [%d,%d], want [0,%d]", off[0], off[numNodes], len(adj))
	}
	if orig != nil && len(orig) != numNodes {
		return nil, fmt.Errorf("graph: orig length %d, want %d", len(orig), numNodes)
	}
	return &Graph{numNodes: numNodes, numEdges: numEdges, off: off, adj: adj, wgt: wgt, orig: orig}, nil
}

// backing owns out-of-heap storage (an mmap) behind a Graph, released
// exactly once via Close or a GC finalizer — the same lifecycle as
// hg.Hypergraph's backing.
type backing struct {
	once    sync.Once
	release func() error
	err     error
}

func (b *backing) close() error {
	b.once.Do(func() {
		if b.release != nil {
			b.err = b.release()
		}
	})
	return b.err
}

// SetReleaser attaches the function that releases g's out-of-heap
// storage and arranges a GC finalizer so dropping the last reference
// releases it even without an explicit Close.
func (g *Graph) SetReleaser(release func() error) {
	g.back = &backing{release: release}
	runtime.SetFinalizer(g.back, func(b *backing) { _ = b.close() })
}

// Close releases the graph's out-of-heap storage, if any; a no-op for
// heap-backed graphs and idempotent otherwise.
func (g *Graph) Close() error {
	if g.back == nil {
		return nil
	}
	return g.back.close()
}

// Mapped reports whether the graph's arrays alias out-of-heap storage.
func (g *Graph) Mapped() bool { return g.back != nil }
