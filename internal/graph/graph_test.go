package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	return Build(5, []Edge{{0, 2, 3}, {2, 4, 1}, {0, 4, 2}}, false)
}

func TestBuildBasic(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 5 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d, want 5, 3", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 0 || g.Degree(2) != 2 {
		t.Fatal("degrees wrong")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) || g.HasEdge(0, 1) {
		t.Fatal("HasEdge wrong")
	}
	if g.Weight(0, 2) != 3 || g.Weight(2, 4) != 1 || g.Weight(0, 1) != 0 {
		t.Fatal("weights wrong")
	}
	ids, ws := g.Neighbors(0)
	if !reflect.DeepEqual(ids, []uint32{2, 4}) || !reflect.DeepEqual(ws, []uint32{3, 2}) {
		t.Fatalf("neighbors of 0 = %v/%v", ids, ws)
	}
}

func TestBuildSqueeze(t *testing.T) {
	g := Build(100, []Edge{{10, 50, 2}, {50, 90, 4}}, true)
	if g.NumNodes() != 3 {
		t.Fatalf("squeezed nodes = %d, want 3", g.NumNodes())
	}
	if !g.Squeezed() {
		t.Fatal("Squeezed() = false")
	}
	wantOrig := []uint32{10, 50, 90}
	for n, want := range wantOrig {
		if got := g.OrigID(uint32(n)); got != want {
			t.Fatalf("OrigID(%d) = %d, want %d", n, got, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("squeezed topology wrong")
	}
}

func TestBuildIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g := Build(4, []Edge{{1, 1, 9}, {0, 2, 1}, {2, 0, 5}, {0, 2, 3}}, false)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	// Duplicate resolution keeps the max weight.
	if g.Weight(0, 2) != 5 {
		t.Fatalf("weight = %d, want 5", g.Weight(0, 2))
	}
}

func TestOrigIDIdentityWithoutSqueeze(t *testing.T) {
	g := triangle()
	for n := uint32(0); n < 5; n++ {
		if g.OrigID(n) != n {
			t.Fatal("OrigID should be identity without squeeze")
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 2, 3}, {0, 4, 2}, {2, 4, 1}}
	g := Build(5, in, false)
	if got := g.Edges(); !reflect.DeepEqual(got, in) {
		t.Fatalf("Edges() = %v, want %v", got, in)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(0, nil, true)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if len(g.Edges()) != 0 {
		t.Fatal("empty graph has edges")
	}
}

func TestBuildProperty(t *testing.T) {
	// Degrees sum to 2|E|; every listed edge is queryable from both
	// endpoints; adjacency rows are sorted.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		var edges []Edge
		for k := 0; k < 50; k++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			edges = append(edges, Edge{u, v, uint32(1 + r.Intn(9))})
		}
		for _, squeeze := range []bool{false, true} {
			g := Build(n, edges, squeeze)
			degSum := 0
			for u := 0; u < g.NumNodes(); u++ {
				degSum += g.Degree(uint32(u))
				ids, _ := g.Neighbors(uint32(u))
				for i := 1; i < len(ids); i++ {
					if ids[i-1] >= ids[i] {
						return false
					}
				}
			}
			if degSum != 2*g.NumEdges() {
				return false
			}
			for _, e := range g.Edges() {
				if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
					return false
				}
				if g.Weight(e.U, e.V) != g.Weight(e.V, e.U) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSqueezePreservesTopology(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(50)
		var edges []Edge
		for k := 0; k < 30; k++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u == v {
				continue
			}
			edges = append(edges, Edge{u, v, 1})
		}
		plain := Build(n, edges, false)
		sq := Build(n, edges, true)
		if plain.NumEdges() != sq.NumEdges() {
			return false
		}
		// Map squeezed edges back and compare sets.
		want := map[[2]uint32]bool{}
		for _, e := range plain.Edges() {
			want[[2]uint32{e.U, e.V}] = true
		}
		for _, e := range sq.Edges() {
			u, v := sq.OrigID(e.U), sq.OrigID(e.V)
			if u > v {
				u, v = v, u
			}
			if !want[[2]uint32{u, v}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
