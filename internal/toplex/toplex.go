// Package toplex implements Stage 2 of the framework: computing the
// toplexes (maximal hyperedges) of a hypergraph and the simplification
// Ȟ = ⟨V, Ě⟩ that keeps only toplexes. A toplex is a hyperedge not
// strictly contained in any other hyperedge; simplification can shrink
// the hypergraph substantially and thereby the memory footprint of the
// later stages.
package toplex

import (
	"sort"

	"hyperline/internal/hg"
)

// Toplexes returns the IDs of the maximal hyperedges of h, in
// ascending ID order. Among duplicate hyperedges (identical vertex
// sets) only the lowest ID is kept.
func Toplexes(h *hg.Hypergraph) []uint32 {
	m := h.NumEdges()
	order := make([]uint32, m)
	for e := range order {
		order[e] = uint32(e)
	}
	// Largest first; ties by ascending ID so the lowest-ID duplicate
	// wins deterministically.
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := h.EdgeSize(order[i]), h.EdgeSize(order[j])
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})

	// acceptedAt[v] lists accepted toplexes containing v.
	acceptedAt := make([][]uint32, h.NumVertices())
	var accepted []uint32
	for _, e := range order {
		verts := h.EdgeVertices(e)
		if len(verts) == 0 {
			continue // empty edges are never toplexes
		}
		// A container of e must contain every vertex of e; probe via
		// the member vertex with the fewest accepted toplexes.
		probe := verts[0]
		for _, v := range verts[1:] {
			if len(acceptedAt[v]) < len(acceptedAt[probe]) {
				probe = v
			}
		}
		contained := false
		for _, t := range acceptedAt[probe] {
			if isSubset(verts, h.EdgeVertices(t)) {
				contained = true
				break
			}
		}
		if contained {
			continue
		}
		accepted = append(accepted, e)
		for _, v := range verts {
			acceptedAt[v] = append(acceptedAt[v], e)
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	return accepted
}

// isSubset reports whether sorted slice a is a subset of sorted slice b.
func isSubset(a, b []uint32) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// Simplify returns the simplification Ȟ containing only the toplexes
// of h, along with the mapping from new hyperedge IDs to the original
// IDs. The vertex ID space is unchanged.
func Simplify(h *hg.Hypergraph) (*hg.Hypergraph, []uint32) {
	return hg.InducedByEdges(h, Toplexes(h))
}

// IsSimple reports whether every hyperedge of h is a toplex (H = Ȟ).
func IsSimple(h *hg.Hypergraph) bool {
	return len(Toplexes(h)) == h.NumEdges()
}

// ContainedRatio returns the exact fraction of hyperedges that are not
// toplexes — the fraction Simplify removes. It is the ground truth the
// planner's sampled estimate (hg.Stats.ToplexSample) approximates, at
// the cost of a full Toplexes pass.
func ContainedRatio(h *hg.Hypergraph) float64 {
	m := h.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(m-len(Toplexes(h))) / float64(m)
}
