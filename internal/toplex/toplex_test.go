package toplex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/hg"
)

func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},       // 1: a b c  ⊂ edge 3
		{1, 2, 3},       // 2: b c d  ⊂ edge 3
		{0, 1, 2, 3, 4}, // 3: a b c d e (toplex)
		{4, 5},          // 4: e f (toplex)
	}, 6)
}

func TestToplexesExample(t *testing.T) {
	got := Toplexes(paperExample())
	if !reflect.DeepEqual(got, []uint32{2, 3}) {
		t.Fatalf("toplexes = %v, want [2 3]", got)
	}
}

func TestToplexesDuplicatesKeepLowestID(t *testing.T) {
	h := hg.FromEdgeSlices([][]uint32{
		{1, 2, 3},
		{1, 2, 3},
		{4, 5},
	}, 6)
	got := Toplexes(h)
	if !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("toplexes = %v, want [0 2]", got)
	}
}

func TestToplexesAllMaximal(t *testing.T) {
	h := hg.FromEdgeSlices([][]uint32{
		{0, 1},
		{2, 3},
		{4, 5},
	}, 6)
	if !IsSimple(h) {
		t.Fatal("pairwise-disjoint hypergraph must be simple")
	}
}

func TestToplexesEmptyEdges(t *testing.T) {
	b := hg.NewBuilder(0)
	b.AddEdge(1, 0, 1) // edge 0 left empty
	h, err := b.BuildWithSize(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := Toplexes(h)
	if !reflect.DeepEqual(got, []uint32{1}) {
		t.Fatalf("toplexes = %v, want [1]", got)
	}
}

func TestSimplify(t *testing.T) {
	h := paperExample()
	simple, orig := Simplify(h)
	if simple.NumEdges() != 2 {
		t.Fatalf("simplified edges = %d, want 2", simple.NumEdges())
	}
	if !reflect.DeepEqual(orig, []uint32{2, 3}) {
		t.Fatalf("orig = %v, want [2 3]", orig)
	}
	if !IsSimple(simple) {
		t.Fatal("simplification must be simple")
	}
	if err := simple.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestToplexesOracle cross-checks against an O(m²) brute force on
// random hypergraphs.
func TestToplexesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := make([][]uint32, 25)
		for e := range edges {
			size := 1 + r.Intn(5)
			seen := map[uint32]bool{}
			for len(seen) < size {
				seen[uint32(r.Intn(12))] = true
			}
			for v := range seen {
				edges[e] = append(edges[e], v)
			}
		}
		h := hg.FromEdgeSlices(edges, 12)
		got := Toplexes(h)
		want := bruteToplexes(h)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteToplexes: edge e survives iff no other edge strictly contains
// it, and among identical edges only the lowest ID survives.
func bruteToplexes(h *hg.Hypergraph) []uint32 {
	var out []uint32
	m := h.NumEdges()
	for e := 0; e < m; e++ {
		ev := h.EdgeVertices(uint32(e))
		if len(ev) == 0 {
			continue
		}
		maximal := true
		for f := 0; f < m && maximal; f++ {
			if f == e {
				continue
			}
			fv := h.EdgeVertices(uint32(f))
			if isSubset(ev, fv) {
				if len(fv) > len(ev) || f < e {
					maximal = false
				}
			}
		}
		if maximal {
			out = append(out, uint32(e))
		}
	}
	return out
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want bool
	}{
		{nil, nil, true},
		{nil, []uint32{1}, true},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 4}, []uint32{1, 2, 3}, false},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
