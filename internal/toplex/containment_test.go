package toplex

import (
	"math/rand"
	"testing"

	"hyperline/internal/hg"
)

// randomHypergraph builds a small random hypergraph whose every edge
// the containment probe will sample exactly (m <= the probe's sample
// budget) with candidate scans well under its cap.
func randomHypergraph(r *rand.Rand, n, m, maxSize int) *hg.Hypergraph {
	edges := make([][]uint32, m)
	for e := range edges {
		size := 1 + r.Intn(maxSize)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(r.Intn(n))] = true
		}
		for v := range seen {
			edges[e] = append(edges[e], v)
		}
	}
	return hg.FromEdgeSlices(edges, n)
}

// TestSampleContainmentExactOnSmallInputs: when every hyperedge is
// sampled (m small enough for stride 1) and no candidate scan hits the
// probe's cap, hg.SampleContainment must equal the exact ContainedRatio
// — the probe and Stage 2 share one containment rule, including the
// lowest-ID-wins duplicate convention.
func TestSampleContainmentExactOnSmallInputs(t *testing.T) {
	cases := []*hg.Hypergraph{
		paperExample(),
		hg.FromEdgeSlices([][]uint32{{1, 2, 3}, {1, 2, 3}, {4, 5}}, 6),         // duplicates
		hg.FromEdgeSlices([][]uint32{{0, 1}, {2, 3}, {4, 5}}, 6),               // all toplexes
		hg.FromEdgeSlices([][]uint32{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}}, 4), // a chain
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		cases = append(cases, randomHypergraph(r, 12, 30, 5))
	}
	for i, h := range cases {
		want := ContainedRatio(h)
		got := hg.SampleContainment(h)
		if got != want {
			t.Fatalf("case %d: SampleContainment = %v, ContainedRatio = %v", i, got, want)
		}
	}
}

// TestSampleContainmentEmpty: degenerate inputs must not divide by
// zero.
func TestSampleContainmentEmpty(t *testing.T) {
	h := hg.FromEdgeSlices(nil, 0)
	if got := hg.SampleContainment(h); got != 0 {
		t.Fatalf("empty hypergraph: SampleContainment = %v, want 0", got)
	}
	if got := ContainedRatio(h); got != 0 {
		t.Fatalf("empty hypergraph: ContainedRatio = %v, want 0", got)
	}
}
