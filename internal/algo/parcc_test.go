package algo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

func TestParallelCCMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(80), r.Intn(160))
		want := ConnectedComponents(g)
		for _, w := range []int{1, 4, 16} {
			got := ParallelCC(g, par.Options{Workers: w})
			if got.Count != want.Count || !reflect.DeepEqual(got.Label, want.Label) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCCHighDiameter(t *testing.T) {
	// A long path is LPCC's worst case; union-find handles it in one
	// pass. Check all three agree.
	g := pathGraph(5000)
	uf := ConnectedComponents(g)
	pcc := ParallelCC(g, par.Options{Workers: 8})
	lp := LabelPropagationCC(g, par.Options{Workers: 8})
	if uf.Count != 1 || pcc.Count != 1 || lp.Count != 1 {
		t.Fatalf("counts: %d %d %d, want 1", uf.Count, pcc.Count, lp.Count)
	}
	if !reflect.DeepEqual(uf.Label, pcc.Label) || !reflect.DeepEqual(uf.Label, lp.Label) {
		t.Fatal("labelings disagree")
	}
}

func TestParallelCCStressRace(t *testing.T) {
	// Many workers hammering a dense graph; run repeatedly to shake
	// out CAS races (and under -race in CI).
	r := rand.New(rand.NewSource(99))
	g := randomGraph(r, 300, 3000)
	want := ConnectedComponents(g)
	for i := 0; i < 20; i++ {
		got := ParallelCC(g, par.Options{Workers: 16, Strategy: par.Cyclic})
		if !reflect.DeepEqual(got.Label, want.Label) {
			t.Fatalf("iteration %d: parallel CC diverged", i)
		}
	}
}

func TestParallelCCEmpty(t *testing.T) {
	g := graph.Build(0, nil, false)
	if cc := ParallelCC(g, par.Options{}); cc.Count != 0 {
		t.Fatalf("empty graph components = %d", cc.Count)
	}
}
