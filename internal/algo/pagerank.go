package algo

import (
	"math"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// PageRankOptions configures the PageRank power iteration.
type PageRankOptions struct {
	// Damping is the damping factor (default 0.85).
	Damping float64
	// Tol is the L1 convergence tolerance (default 1e-9).
	Tol float64
	// MaxIter bounds the iteration count (default 200).
	MaxIter int
	// Par configures the parallel loops.
	Par par.Options
}

func (o PageRankOptions) defaults() PageRankOptions {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	return o
}

// PageRank computes the PageRank vector of an undirected graph by
// parallel power iteration. Dangling (degree-0) nodes distribute their
// mass uniformly. The result sums to 1. This backs the paper's Table II
// experiment, which ranks diseases by PageRank in the clique expansion
// and in higher-order s-clique graphs.
func PageRank(g *graph.Graph, opt PageRankOptions) []float64 {
	opt = opt.defaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for u := range rank {
		rank[u] = inv
	}
	diffs := make([]float64, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Dangling (degree-0) mass redistributes uniformly.
		var danglingMass float64
		for u := 0; u < n; u++ {
			if g.Degree(uint32(u)) == 0 {
				danglingMass += rank[u]
			}
		}
		base := (1-opt.Damping)*inv + opt.Damping*danglingMass*inv
		par.For(n, opt.Par, func(_, u int) {
			sum := 0.0
			ids, _ := g.Neighbors(uint32(u))
			for _, v := range ids {
				sum += rank[v] / float64(g.Degree(v))
			}
			nv := base + opt.Damping*sum
			next[u] = nv
			diffs[u] = math.Abs(nv - rank[u])
		})
		rank, next = next, rank
		// The L1 convergence delta is summed serially in node order:
		// per-worker partial sums would make the iteration count — and
		// therefore the result — depend on how iterations were
		// partitioned. With this, PageRank is bit-identical for any
		// Workers/Grain/Strategy (the measures engine's determinism
		// contract).
		var delta float64
		for _, d := range diffs {
			delta += d
		}
		if delta < opt.Tol {
			break
		}
	}
	return rank
}
