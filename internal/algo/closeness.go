package algo

import (
	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// ClosenessCentrality returns the closeness centrality of every node,
// computed with the Wasserman-Faust improved formula for disconnected
// graphs:
//
//	C(u) = (r-1)/(n-1) · (r-1)/Σ_{v reachable} d(u,v)
//
// where r is the number of nodes reachable from u (u included). On an
// s-line graph this is the s-closeness centrality of the hyperedges:
// hyperedges a short s-walk away from everything score high. Isolated
// nodes score 0. Parallel over source nodes.
func ClosenessCentrality(g *graph.Graph, opt par.Options) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	w := opt.EffectiveWorkers()
	scratch := make([][]int32, w)
	queues := make([][]uint32, w)
	par.For(n, opt, func(worker, u int) {
		if scratch[worker] == nil {
			scratch[worker] = make([]int32, n)
			for i := range scratch[worker] {
				scratch[worker][i] = -1
			}
			queues[worker] = make([]uint32, 0, n)
		}
		dist := scratch[worker]
		queue := bfsInto(g, uint32(u), dist, queues[worker][:0])
		queues[worker] = queue
		var sum int64
		for _, v := range queue {
			sum += int64(dist[v])
		}
		r := len(queue) // reachable nodes including u
		if r > 1 && sum > 0 {
			frac := float64(r-1) / float64(n-1)
			out[u] = frac * float64(r-1) / float64(sum)
		}
		for _, v := range queue {
			dist[v] = -1
		}
	})
	return out
}

// HarmonicCentrality returns the harmonic centrality of every node,
// H(u) = Σ_{v≠u} 1/d(u,v) with 1/∞ = 0, normalized by (n-1). Unlike
// closeness it is well-defined on disconnected s-line graphs without
// correction factors. Parallel over source nodes.
func HarmonicCentrality(g *graph.Graph, opt par.Options) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	w := opt.EffectiveWorkers()
	scratch := make([][]int32, w)
	queues := make([][]uint32, w)
	par.For(n, opt, func(worker, u int) {
		if scratch[worker] == nil {
			scratch[worker] = make([]int32, n)
			for i := range scratch[worker] {
				scratch[worker][i] = -1
			}
			queues[worker] = make([]uint32, 0, n)
		}
		dist := scratch[worker]
		queue := bfsInto(g, uint32(u), dist, queues[worker][:0])
		queues[worker] = queue
		var sum float64
		for _, v := range queue {
			if d := dist[v]; d > 0 {
				sum += 1 / float64(d)
			}
		}
		out[u] = sum / float64(n-1)
		for _, v := range queue {
			dist[v] = -1
		}
	})
	return out
}

// Eccentricities returns the eccentricity of every node (maximum
// finite BFS distance; 0 for isolated nodes), parallel over sources.
// On an s-line graph these are the s-eccentricities; their maximum is
// the s-diameter and their minimum over non-isolated nodes the
// s-radius.
func Eccentricities(g *graph.Graph, opt par.Options) []int32 {
	n := g.NumNodes()
	out := make([]int32, n)
	w := opt.EffectiveWorkers()
	scratch := make([][]int32, w)
	queues := make([][]uint32, w)
	par.For(n, opt, func(worker, u int) {
		if scratch[worker] == nil {
			scratch[worker] = make([]int32, n)
			for i := range scratch[worker] {
				scratch[worker][i] = -1
			}
			queues[worker] = make([]uint32, 0, n)
		}
		dist := scratch[worker]
		queue := bfsInto(g, uint32(u), dist, queues[worker][:0])
		queues[worker] = queue
		var max int32
		for _, v := range queue {
			if dist[v] > max {
				max = dist[v]
			}
		}
		out[u] = max
		for _, v := range queue {
			dist[v] = -1
		}
	})
	return out
}

// bfsInto runs BFS from src writing distances into dist (which must be
// all -1) and returns the visit queue (src included). Callers must
// reset dist via the returned queue.
func bfsInto(g *graph.Graph, src uint32, dist []int32, queue []uint32) []uint32 {
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// ClusteringCoefficients returns the local clustering coefficient of
// every node: the fraction of its neighbor pairs that are themselves
// adjacent. On s-line graphs, clustering quantifies how much
// s-incidence is transitive. Parallel over nodes; per-node cost is
// O(deg · Δ log Δ) via sorted-adjacency intersections.
func ClusteringCoefficients(g *graph.Graph, opt par.Options) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	par.For(n, opt, func(_, u int) {
		ids, _ := g.Neighbors(uint32(u))
		deg := len(ids)
		if deg < 2 {
			return
		}
		closed := 0
		for i, v := range ids {
			vIDs, _ := g.Neighbors(v)
			// Count neighbors of u after position i that are also
			// neighbors of v (each triangle counted once).
			closed += intersectCount(ids[i+1:], vIDs)
		}
		out[u] = 2 * float64(closed) / (float64(deg) * float64(deg-1))
	})
	return out
}

// GlobalClusteringCoefficient returns 3·triangles / open+closed wedge
// count (the transitivity of the graph), 0 for wedge-free graphs.
func GlobalClusteringCoefficient(g *graph.Graph, opt par.Options) float64 {
	n := g.NumNodes()
	w := opt.EffectiveWorkers()
	tri := par.NewWorkerStats(w)
	wedges := par.NewWorkerStats(w)
	par.For(n, opt, func(worker, u int) {
		ids, _ := g.Neighbors(uint32(u))
		deg := len(ids)
		if deg < 2 {
			return
		}
		wedges.Add(worker, int64(deg)*int64(deg-1)/2)
		closed := 0
		for i, v := range ids {
			vIDs, _ := g.Neighbors(v)
			closed += intersectCount(ids[i+1:], vIDs)
		}
		tri.Add(worker, int64(closed))
	})
	if wedges.Total() == 0 {
		return 0
	}
	// Each triangle contributes one closed wedge at each of its three
	// corners, and tri already counts per-corner closures.
	return float64(tri.Total()) / float64(wedges.Total())
}

func intersectCount(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Degrees returns the degree of every node.
func Degrees(g *graph.Graph) []int {
	out := make([]int, g.NumNodes())
	for u := range out {
		out[u] = g.Degree(uint32(u))
	}
	return out
}
