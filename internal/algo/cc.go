// Package algo implements Stage 5 of the framework: the s-measures
// computed on the materialized s-line graph. Because an s-line graph is
// an ordinary graph, any standard graph algorithm applies; this package
// provides the ones used in the paper's applications and evaluation —
// s-connected components (both union-find and the label-propagation
// variant benchmarked in Table V), s-betweenness centrality (Brandes),
// s-distance (BFS), and PageRank (for Table II).
package algo

import (
	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// Components is a connected-component labeling of a graph: Label[u] is
// the component representative of node u (the minimum node ID in the
// component), and Count is the number of components (isolated nodes
// included).
type Components struct {
	Label []uint32
	Count int
}

// Members returns the component membership lists, sorted by ascending
// representative and, within a component, ascending node ID.
func (c *Components) Members() [][]uint32 {
	byLabel := map[uint32][]uint32{}
	for u, l := range c.Label {
		byLabel[l] = append(byLabel[l], uint32(u))
	}
	out := make([][]uint32, 0, len(byLabel))
	for l := uint32(0); int(l) < len(c.Label); l++ {
		if ms, ok := byLabel[l]; ok {
			out = append(out, ms)
		}
	}
	return out
}

// SameComponent reports whether u and v share a component.
func (c *Components) SameComponent(u, v uint32) bool {
	return c.Label[u] == c.Label[v]
}

// ConnectedComponents labels components with a sequential union-find
// (path-halving + union by smaller root). This is the reference
// implementation; LabelPropagationCC is the parallel variant the paper
// benchmarks.
func ConnectedComponents(g *graph.Graph) *Components {
	n := g.NumNodes()
	parent := make([]uint32, n)
	for u := range parent {
		parent[u] = uint32(u)
	}
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		ids, _ := g.Neighbors(uint32(u))
		for _, v := range ids {
			ru, rv := find(uint32(u)), find(v)
			if ru == rv {
				continue
			}
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	labels := make([]uint32, n)
	count := 0
	for u := 0; u < n; u++ {
		labels[u] = find(uint32(u))
		if labels[u] == uint32(u) {
			count++
		}
	}
	return &Components{Label: labels, Count: count}
}

// LabelPropagationCC labels components with synchronous parallel
// min-label propagation (LPCC), the algorithm benchmarked end-to-end in
// the paper's Table V: every node repeatedly adopts the minimum label
// in its closed neighborhood until a fixed point.
func LabelPropagationCC(g *graph.Graph, opt par.Options) *Components {
	n := g.NumNodes()
	labels := make([]uint32, n)
	next := make([]uint32, n)
	for u := range labels {
		labels[u] = uint32(u)
	}
	w := opt.EffectiveWorkers()
	for {
		changedPer := make([]bool, w)
		par.For(n, opt, func(worker, u int) {
			min := labels[u]
			ids, _ := g.Neighbors(uint32(u))
			for _, v := range ids {
				if labels[v] < min {
					min = labels[v]
				}
			}
			next[u] = min
			if min != labels[u] {
				changedPer[worker] = true
			}
		})
		labels, next = next, labels
		changed := false
		for _, c := range changedPer {
			changed = changed || c
		}
		if !changed {
			break
		}
	}
	// Min-labels converge to the minimum node ID of each component,
	// matching ConnectedComponents' representatives.
	count := 0
	for u := 0; u < n; u++ {
		if labels[u] == uint32(u) {
			count++
		}
	}
	return &Components{Label: labels, Count: count}
}
