package algo

import (
	"container/heap"
	"math"

	"hyperline/internal/graph"
)

// WeightedDistances computes single-source shortest-path distances
// where traversing an s-line edge with overlap w costs cost(w).
// Passing nil uses the inverse-overlap cost 1/w, under which strongly
// overlapping hyperedges are "close" — a weighted refinement of the
// hop-count s-distance (hop counts are recovered with
// cost = func(uint32) float64 { return 1 }). Unreachable nodes get
// +Inf.
func WeightedDistances(g *graph.Graph, src uint32, cost func(w uint32) float64) []float64 {
	if cost == nil {
		cost = func(w uint32) float64 { return 1 / float64(w) }
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		ids, ws := g.Neighbors(it.node)
		for k, v := range ids {
			c := cost(ws[k])
			if c < 0 {
				panic("algo: negative edge cost")
			}
			if nd := it.dist + c; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, distItem{node: v, dist: nd})
			}
		}
	}
	return dist
}

// WeightedEccentricity returns the maximum finite weighted distance
// from src (0 when src is isolated).
func WeightedEccentricity(g *graph.Graph, src uint32, cost func(w uint32) float64) float64 {
	max := 0.0
	for _, d := range WeightedDistances(g, src, cost) {
		if !math.IsInf(d, 1) && d > max {
			max = d
		}
	}
	return max
}

type distItem struct {
	node uint32
	dist float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x any)         { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() (popped any) {
	popped = h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return popped
}
