package algo

import (
	"sync/atomic"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// ParallelCC labels connected components with a lock-free concurrent
// union-find: edges are processed in parallel and unions install the
// smaller root over the larger with compare-and-swap, then a final
// parallel pass flattens every node to its root. Produces the same
// labeling as ConnectedComponents (minimum node ID per component).
//
// This is the third connected-components implementation (alongside the
// sequential union-find and the label-propagation LPCC of Table V);
// on high-diameter graphs it avoids LPCC's O(diameter) rounds.
func ParallelCC(g *graph.Graph, opt par.Options) *Components {
	n := g.NumNodes()
	parent := make([]atomic.Uint32, n)
	for u := 0; u < n; u++ {
		parent[u].Store(uint32(u))
	}

	find := func(x uint32) uint32 {
		for {
			p := parent[x].Load()
			if p == x {
				return x
			}
			gp := parent[p].Load()
			// Path halving; a lost race just skips one shortcut.
			parent[x].CompareAndSwap(p, gp)
			x = gp
		}
	}

	union := func(a, b uint32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			// Attach the larger root under the smaller; retry if rb
			// gained a parent concurrently.
			if parent[rb].CompareAndSwap(rb, ra) {
				return
			}
		}
	}

	par.For(n, opt, func(_, u int) {
		ids, _ := g.Neighbors(uint32(u))
		for _, v := range ids {
			if v > uint32(u) { // each edge once
				union(uint32(u), v)
			}
		}
	})

	labels := make([]uint32, n)
	par.For(n, opt, func(_, u int) {
		labels[u] = find(uint32(u))
	})
	count := 0
	for u := 0; u < n; u++ {
		if labels[u] == uint32(u) {
			count++
		}
	}
	return &Components{Label: labels, Count: count}
}
