package algo

import (
	"sync"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// betweennessSlots is the fixed accumulator count of the Betweenness
// reduction. Source vertices are assigned to slots cyclically
// (src % betweennessSlots), each slot sums its sources' dependency
// contributions in ascending source order, and the final reduction adds
// slots in slot order — a float summation order that depends only on
// the graph, never on the worker count, grain, or workload
// distribution. It also caps the usable parallelism of one Betweenness
// call (and its per-slot score memory), which the all-pairs cost
// dwarfs in practice.
const betweennessSlots = 64

// Betweenness computes the betweenness centrality of every node using
// Brandes' algorithm, parallelized over source vertices grouped into a
// fixed number of accumulator slots. On an s-line graph this is exactly
// the s-betweenness centrality of §II-B: for hyperedge e,
//
//	C(e) = Σ_{f≠g} σ_fg(e) / σ_fg
//
// where σ_fg counts shortest s-walks from f to g and σ_fg(e) those
// passing through e. Edges are treated as unweighted (shortest s-walks
// count hops). Scores count each unordered pair twice, matching the
// standard undirected convention; use Normalize for the paper's
// normalized scores.
//
// The result is bit-identical for any Workers/Grain/Strategy: the
// floating-point accumulation order is fixed by the slot scheme above,
// which the Stage-5 measures engine relies on for cacheable,
// reproducible results.
func Betweenness(g *graph.Graph, opt par.Options) []float64 {
	n := g.NumNodes()
	slots := betweennessSlots
	if slots > n {
		slots = n
	}
	total := make([]float64, n)
	if n == 0 {
		return total
	}

	type workspace struct {
		sigma []float64 // shortest-path counts
		dist  []int32
		delta []float64 // dependency accumulation
		order []uint32  // BFS visit order (stack)
	}
	pool := sync.Pool{New: func() any {
		ws := &workspace{
			sigma: make([]float64, n),
			dist:  make([]int32, n),
			delta: make([]float64, n),
			order: make([]uint32, 0, n),
		}
		for i := range ws.dist {
			ws.dist[i] = -1
		}
		return ws
	}}

	// Slots are processed in waves of at most EffectiveWorkers
	// concurrent slots, reusing one score buffer per wave lane: peak
	// accumulator memory stays O(workers·n) as before, while the
	// summation order — ascending sources within a slot, slots folded
	// in ascending slot order — is untouched (waves fold slot
	// waveStart, waveStart+1, ... before the next wave starts).
	wave := opt.EffectiveWorkers()
	if wave > slots {
		wave = slots
	}
	buffers := make([][]float64, wave)
	for waveStart := 0; waveStart < slots; waveStart += wave {
		laneCount := wave
		if slots-waveStart < laneCount {
			laneCount = slots - waveStart
		}
		par.For(laneCount, opt, func(_, lane int) {
			score := buffers[lane]
			if score == nil {
				score = make([]float64, n)
				buffers[lane] = score
			} else {
				clear(score)
			}
			ws := pool.Get().(*workspace)
			for src := waveStart + lane; src < n; src += slots {
				brandesFromSource(g, uint32(src), ws.sigma, ws.dist, ws.delta, &ws.order, score)
			}
			pool.Put(ws)
		})
		for lane := 0; lane < laneCount; lane++ {
			for u, s := range buffers[lane] {
				total[u] += s
			}
		}
	}
	return total
}

// brandesFromSource performs one Brandes iteration: BFS from src, then
// backward dependency accumulation into score. The scratch slices must
// have dist pre-set to -1 and sigma/delta zeroed; they are restored on
// return so they can be reused.
func brandesFromSource(g *graph.Graph, src uint32, sigma []float64, dist []int32, delta []float64, order *[]uint32, score []float64) {
	queue := (*order)[:0]
	sigma[src] = 1
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(queue) - 1; i >= 0; i-- {
		u := queue[i]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] == dist[u]+1 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
		if u != src {
			score[u] += delta[u]
		}
	}
	// Reset scratch for the next source.
	for _, u := range queue {
		sigma[u] = 0
		dist[u] = -1
		delta[u] = 0
	}
	*order = queue
}

// Normalize rescales betweenness scores into [0, 1] by the number of
// ordered node pairs excluding the node itself, (n-1)(n-2); this is the
// normalization NetworkX applies for undirected graphs (scores are
// additionally halved because each unordered pair is counted twice).
// n ≤ 2 yields all-zero scores.
func Normalize(scores []float64) []float64 {
	n := len(scores)
	out := make([]float64, n)
	if n <= 2 {
		return out
	}
	scale := 1.0 / (float64(n-1) * float64(n-2))
	for i, s := range scores {
		out[i] = s * scale
	}
	return out
}
