package algo

import (
	"sync"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

// Betweenness computes the betweenness centrality of every node using
// Brandes' algorithm, parallelized over source vertices with per-worker
// accumulators. On an s-line graph this is exactly the s-betweenness
// centrality of §II-B: for hyperedge e,
//
//	C(e) = Σ_{f≠g} σ_fg(e) / σ_fg
//
// where σ_fg counts shortest s-walks from f to g and σ_fg(e) those
// passing through e. Edges are treated as unweighted (shortest s-walks
// count hops). Scores count each unordered pair twice, matching the
// standard undirected convention; use Normalize for the paper's
// normalized scores.
func Betweenness(g *graph.Graph, opt par.Options) []float64 {
	n := g.NumNodes()
	w := opt.EffectiveWorkers()

	type workspace struct {
		sigma []float64 // shortest-path counts
		dist  []int32
		delta []float64 // dependency accumulation
		order []uint32  // BFS visit order (stack)
		score []float64 // per-worker centrality accumulator
	}
	pool := sync.Pool{New: func() any {
		ws := &workspace{
			sigma: make([]float64, n),
			dist:  make([]int32, n),
			delta: make([]float64, n),
			order: make([]uint32, 0, n),
			score: make([]float64, n),
		}
		for i := range ws.dist {
			ws.dist[i] = -1
		}
		return ws
	}}
	perWorker := make([]*workspace, w)
	var mu sync.Mutex

	par.For(n, opt, func(worker, src int) {
		ws := perWorker[worker]
		if ws == nil {
			ws = pool.Get().(*workspace)
			perWorker[worker] = ws
		}
		brandesFromSource(g, uint32(src), ws.sigma, ws.dist, ws.delta, &ws.order, ws.score)
	})

	// Mu guards nothing concurrent here (all workers joined), but
	// keeps the reduction obviously safe if refactored.
	mu.Lock()
	defer mu.Unlock()
	total := make([]float64, n)
	for _, ws := range perWorker {
		if ws == nil {
			continue
		}
		for u, s := range ws.score {
			total[u] += s
		}
	}
	return total
}

// brandesFromSource performs one Brandes iteration: BFS from src, then
// backward dependency accumulation into score. The scratch slices must
// have dist pre-set to -1 and sigma/delta zeroed; they are restored on
// return so they can be reused.
func brandesFromSource(g *graph.Graph, src uint32, sigma []float64, dist []int32, delta []float64, order *[]uint32, score []float64) {
	queue := (*order)[:0]
	sigma[src] = 1
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(queue) - 1; i >= 0; i-- {
		u := queue[i]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] == dist[u]+1 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
		if u != src {
			score[u] += delta[u]
		}
	}
	// Reset scratch for the next source.
	for _, u := range queue {
		sigma[u] = 0
		dist[u] = -1
		delta[u] = 0
	}
	*order = queue
}

// Normalize rescales betweenness scores into [0, 1] by the number of
// ordered node pairs excluding the node itself, (n-1)(n-2); this is the
// normalization NetworkX applies for undirected graphs (scores are
// additionally halved because each unordered pair is counted twice).
// n ≤ 2 yields all-zero scores.
func Normalize(scores []float64) []float64 {
	n := len(scores)
	out := make([]float64, n)
	if n <= 2 {
		return out
	}
	scale := 1.0 / (float64(n-1) * float64(n-2))
	for i, s := range scores {
		out[i] = s * scale
	}
	return out
}
