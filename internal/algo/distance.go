package algo

import (
	"hyperline/internal/graph"
)

// Unreachable is the distance reported for node pairs with no
// connecting path.
const Unreachable = int32(-1)

// BFSDistances returns the hop distance from src to every node
// (Unreachable where no path exists). On an s-line graph this is the
// s-distance between hyperedges: the length of the shortest s-walk.
func BFSDistances(g *graph.Graph, src uint32) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]uint32, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		ids, _ := g.Neighbors(u)
		for _, v := range ids {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite distance from src (0 when
// src is isolated).
func Eccentricity(g *graph.Graph, src uint32) int32 {
	max := int32(0)
	for _, d := range BFSDistances(g, src) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all nodes — the
// s-diameter when applied to an s-line graph. O(n·(n+m)); intended for
// the modest graphs that survive s-filtering.
func Diameter(g *graph.Graph) int32 {
	max := int32(0)
	for u := 0; u < g.NumNodes(); u++ {
		if e := Eccentricity(g, uint32(u)); e > max {
			max = e
		}
	}
	return max
}
