package algo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	var edges []graph.Edge
	for k := 0; k < m; k++ {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	return graph.Build(n, edges, false)
}

func pathGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: 1})
	}
	return graph.Build(n, edges, false)
}

func starGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i), W: 1})
	}
	return graph.Build(n, edges, false)
}

func TestConnectedComponentsBasic(t *testing.T) {
	g := graph.Build(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 1},
	}, false)
	cc := ConnectedComponents(g)
	if cc.Count != 3 {
		t.Fatalf("components = %d, want 3", cc.Count)
	}
	if !cc.SameComponent(0, 2) || cc.SameComponent(0, 3) || cc.SameComponent(4, 5) {
		t.Fatal("component membership wrong")
	}
	members := cc.Members()
	if !reflect.DeepEqual(members[0], []uint32{0, 1, 2}) {
		t.Fatalf("members[0] = %v", members[0])
	}
	if !reflect.DeepEqual(members[1], []uint32{3, 4}) {
		t.Fatalf("members[1] = %v", members[1])
	}
	if !reflect.DeepEqual(members[2], []uint32{5}) {
		t.Fatalf("members[2] = %v", members[2])
	}
}

func TestLPCCMatchesUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(60), r.Intn(100))
		uf := ConnectedComponents(g)
		lp := LabelPropagationCC(g, par.Options{Workers: 4})
		return uf.Count == lp.Count && reflect.DeepEqual(uf.Label, lp.Label)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLPCCStrategies(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 200, 400)
	want := ConnectedComponents(g).Label
	for _, strat := range []par.Strategy{par.Blocked, par.Cyclic} {
		got := LabelPropagationCC(g, par.Options{Workers: 8, Strategy: strat}).Label
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("strategy %v differs from union-find", strat)
		}
	}
}

func TestBFSDistancesPath(t *testing.T) {
	g := pathGraph(5)
	d := BFSDistances(g, 0)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("distances = %v, want %v", d, want)
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := graph.Build(4, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	d := BFSDistances(g, 0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Fatalf("expected unreachable, got %v", d)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(6)
	if e := Eccentricity(g, 0); e != 5 {
		t.Fatalf("ecc(0) = %d, want 5", e)
	}
	if e := Eccentricity(g, 3); e != 3 {
		t.Fatalf("ecc(3) = %d, want 3", e)
	}
	if d := Diameter(g); d != 5 {
		t.Fatalf("diameter = %d, want 5", d)
	}
	if d := Diameter(starGraph(7)); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: betweenness (pair-doubled) of node i counts
	// 2·(#pairs separated): node 1 separates {0}×{2,3,4} → 6; node 2
	// separates {0,1}×{3,4} → 8.
	g := pathGraph(5)
	b := Betweenness(g, par.Options{Workers: 3})
	want := []float64{0, 6, 8, 6, 0}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Fatalf("betweenness = %v, want %v", b, want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and k=5 leaves: center lies on all
	// leaf-leaf shortest paths: 2·C(5,2) = 20. Leaves: 0.
	g := starGraph(6)
	b := Betweenness(g, par.Options{})
	if math.Abs(b[0]-20) > 1e-9 {
		t.Fatalf("center betweenness = %f, want 20", b[0])
	}
	for i := 1; i < 6; i++ {
		if b[i] != 0 {
			t.Fatalf("leaf %d betweenness = %f, want 0", i, b[i])
		}
	}
	norm := Normalize(b)
	// NetworkX-style normalization: 20 / ((n-1)(n-2)) = 20/20 = 1.
	if math.Abs(norm[0]-1) > 1e-9 {
		t.Fatalf("normalized center = %f, want 1", norm[0])
	}
}

// bruteBetweenness enumerates all shortest paths explicitly via BFS
// path counting from every pair (O(n³)-ish; tiny graphs only).
func bruteBetweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	score := make([]float64, n)
	for s := 0; s < n; s++ {
		ds := BFSDistances(g, uint32(s))
		// sigma[v]: number of shortest s→v paths.
		sigma := make([]float64, n)
		sigma[s] = 1
		// process nodes in BFS-distance order
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if ds[v] >= 0 {
				order = append(order, v)
			}
		}
		for d := int32(1); ; d++ {
			found := false
			for _, v := range order {
				if ds[v] != d {
					continue
				}
				found = true
				ids, _ := g.Neighbors(uint32(v))
				for _, u := range ids {
					if ds[u] == d-1 {
						sigma[v] += sigma[u]
					}
				}
			}
			if !found {
				break
			}
		}
		for t := 0; t < n; t++ {
			if t == s || ds[t] <= 0 {
				continue
			}
			// Count shortest s→t paths through each interior w.
			dt := BFSDistances(g, uint32(t))
			for w := 0; w < n; w++ {
				if w == s || w == t || ds[w] < 0 || dt[w] < 0 {
					continue
				}
				if ds[w]+dt[w] != ds[t] {
					continue
				}
				// sigma_st(w) = sigma_s(w) * sigma_t(w)
				sigmaT := make([]float64, n)
				sigmaT[t] = 1
				for d := int32(1); d <= dt[w]; d++ {
					for v := 0; v < n; v++ {
						if dt[v] != d {
							continue
						}
						ids, _ := g.Neighbors(uint32(v))
						for _, u := range ids {
							if dt[u] == d-1 {
								sigmaT[v] += sigmaT[u]
							}
						}
					}
				}
				score[w] += sigma[w] * sigmaT[w] / sigma[t]
			}
		}
	}
	return score
}

func TestBetweennessMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(10), r.Intn(16))
		got := Betweenness(g, par.Options{Workers: 2})
		want := bruteBetweenness(g)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := randomGraph(r, 80, 200)
	base := Betweenness(g, par.Options{Workers: 1})
	for _, w := range []int{2, 4, 8} {
		for _, strat := range []par.Strategy{par.Blocked, par.Cyclic} {
			got := Betweenness(g, par.Options{Workers: w, Strategy: strat, Grain: 1})
			for i := range base {
				// Bit-identical, not approximately equal: the fixed
				// slot reduction makes the summation order
				// worker-independent.
				if got[i] != base[i] {
					t.Fatalf("workers=%d strategy=%v changed betweenness at node %d: %v != %v",
						w, strat, i, got[i], base[i])
				}
			}
		}
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a cycle (2-regular), PageRank is uniform.
	n := 10
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32((i + 1) % n), W: 1})
	}
	g := graph.Build(n, edges, false)
	pr := PageRank(g, PageRankOptions{})
	for _, p := range pr {
		if math.Abs(p-0.1) > 1e-6 {
			t.Fatalf("cycle PageRank = %v, want uniform 0.1", pr)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(40), r.Intn(80))
		pr := PageRank(g, PageRankOptions{Par: par.Options{Workers: 3}})
		sum := 0.0
		for _, p := range pr {
			sum += p
			if p < 0 {
				return false
			}
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankStarCenterHighest(t *testing.T) {
	g := starGraph(8)
	pr := PageRank(g, PageRankOptions{})
	for i := 1; i < 8; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("center rank %f not above leaf %f", pr[0], pr[i])
		}
	}
}

func TestPageRankMatchesDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 12, 30)
	got := PageRank(g, PageRankOptions{Tol: 1e-12, MaxIter: 2000})
	want := densePageRank(g, 0.85)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("node %d: got %f, want %f", i, got[i], want[i])
		}
	}
}

func densePageRank(g *graph.Graph, d float64) []float64 {
	n := g.NumNodes()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < 5000; iter++ {
		var dangling float64
		for u := 0; u < n; u++ {
			if g.Degree(uint32(u)) == 0 {
				dangling += rank[u]
			}
		}
		for u := 0; u < n; u++ {
			sum := 0.0
			ids, _ := g.Neighbors(uint32(u))
			for _, v := range ids {
				sum += rank[v] / float64(g.Degree(v))
			}
			next[u] = (1-d)/float64(n) + d*(sum+dangling/float64(n))
		}
		rank, next = next, rank
	}
	return rank
}

func TestPageRankEmpty(t *testing.T) {
	if pr := PageRank(graph.Build(0, nil, false), PageRankOptions{}); pr != nil {
		t.Fatal("empty graph should yield nil ranks")
	}
}

func TestNormalizeSmall(t *testing.T) {
	if got := Normalize([]float64{5, 5}); got[0] != 0 || got[1] != 0 {
		t.Fatal("n<=2 should normalize to zero")
	}
}
