package algo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperline/internal/graph"
	"hyperline/internal/par"
)

func TestClosenessPath(t *testing.T) {
	// Path 0-1-2: closeness(1) = 2/(1+1) = 1, closeness(0) = 2/3.
	g := pathGraph(3)
	c := ClosenessCentrality(g, par.Options{})
	if math.Abs(c[1]-1) > 1e-9 {
		t.Fatalf("closeness(1) = %f, want 1", c[1])
	}
	if math.Abs(c[0]-2.0/3.0) > 1e-9 {
		t.Fatalf("closeness(0) = %f, want 2/3", c[0])
	}
	if math.Abs(c[0]-c[2]) > 1e-12 {
		t.Fatal("symmetry broken")
	}
}

func TestClosenessDisconnected(t *testing.T) {
	// Two components {0,1} and {2,3,4} (path). Wasserman-Faust scales
	// by reachable fraction.
	g := graph.Build(5, []graph.Edge{
		{U: 0, V: 1, W: 1},
		{U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1},
	}, false)
	c := ClosenessCentrality(g, par.Options{Workers: 2})
	// Node 0: r=2, sum=1 → (1/4)·(1/1) = 0.25.
	if math.Abs(c[0]-0.25) > 1e-9 {
		t.Fatalf("closeness(0) = %f, want 0.25", c[0])
	}
	// Node 3: r=3, sum=2 → (2/4)·(2/2) = 0.5.
	if math.Abs(c[3]-0.5) > 1e-9 {
		t.Fatalf("closeness(3) = %f, want 0.5", c[3])
	}
}

func TestClosenessIsolated(t *testing.T) {
	g := graph.Build(3, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	c := ClosenessCentrality(g, par.Options{})
	if c[2] != 0 {
		t.Fatalf("isolated closeness = %f, want 0", c[2])
	}
}

func TestHarmonicPath(t *testing.T) {
	// Path 0-1-2: H(1) = (1+1)/2 = 1, H(0) = (1 + 1/2)/2 = 0.75.
	g := pathGraph(3)
	h := HarmonicCentrality(g, par.Options{})
	if math.Abs(h[1]-1) > 1e-9 || math.Abs(h[0]-0.75) > 1e-9 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestHarmonicDisconnectedFinite(t *testing.T) {
	g := graph.Build(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}, false)
	h := HarmonicCentrality(g, par.Options{})
	for _, v := range h {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("harmonic = %v, want all 1/3", h)
		}
	}
}

func TestEccentricitiesMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(40), r.Intn(80))
		ecc := Eccentricities(g, par.Options{Workers: 4})
		for u := 0; u < g.NumNodes(); u++ {
			if ecc[u] != Eccentricity(g, uint32(u)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringTriangle(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j), W: 1})
		}
	}
	g := graph.Build(3, edges, false)
	cc := ClusteringCoefficients(g, par.Options{})
	for _, c := range cc {
		if math.Abs(c-1) > 1e-9 {
			t.Fatalf("triangle clustering = %v, want all 1", cc)
		}
	}
	if gcc := GlobalClusteringCoefficient(g, par.Options{}); math.Abs(gcc-1) > 1e-9 {
		t.Fatalf("global clustering = %f, want 1", gcc)
	}
}

func TestClusteringStar(t *testing.T) {
	g := starGraph(5)
	cc := ClusteringCoefficients(g, par.Options{})
	for _, c := range cc {
		if c != 0 {
			t.Fatalf("star clustering = %v, want all 0", cc)
		}
	}
	if gcc := GlobalClusteringCoefficient(g, par.Options{}); gcc != 0 {
		t.Fatalf("global clustering = %f, want 0", gcc)
	}
}

func TestClusteringPaw(t *testing.T) {
	// Triangle {0,1,2} + pendant 3 on 2.
	g := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}, false)
	cc := ClusteringCoefficients(g, par.Options{})
	want := []float64{1, 1, 1.0 / 3.0, 0}
	for i := range want {
		if math.Abs(cc[i]-want[i]) > 1e-9 {
			t.Fatalf("clustering = %v, want %v", cc, want)
		}
	}
	// Global: 3 closed wedges (one per triangle corner), total wedges
	// = 1 + 1 + 3 = 5.
	if gcc := GlobalClusteringCoefficient(g, par.Options{}); math.Abs(gcc-3.0/5.0) > 1e-9 {
		t.Fatalf("global clustering = %f, want 0.6", gcc)
	}
}

func TestCentralitiesDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	g := randomGraph(r, 60, 150)
	c1 := ClosenessCentrality(g, par.Options{Workers: 1})
	h1 := HarmonicCentrality(g, par.Options{Workers: 1})
	for _, w := range []int{3, 8} {
		cw := ClosenessCentrality(g, par.Options{Workers: w, Strategy: par.Cyclic})
		hw := HarmonicCentrality(g, par.Options{Workers: w, Strategy: par.Cyclic})
		for i := range c1 {
			if math.Abs(cw[i]-c1[i]) > 1e-12 || math.Abs(hw[i]-h1[i]) > 1e-12 {
				t.Fatalf("worker count changed centralities at node %d", i)
			}
		}
	}
}

func TestDegrees(t *testing.T) {
	g := starGraph(4)
	d := Degrees(g)
	if d[0] != 3 || d[1] != 1 || d[2] != 1 || d[3] != 1 {
		t.Fatalf("degrees = %v", d)
	}
}

func TestCentralitiesTinyGraphs(t *testing.T) {
	empty := graph.Build(0, nil, false)
	if len(ClosenessCentrality(empty, par.Options{})) != 0 {
		t.Fatal("empty closeness should be empty")
	}
	single := graph.Build(1, nil, false)
	if c := ClosenessCentrality(single, par.Options{}); len(c) != 1 || c[0] != 0 {
		t.Fatal("singleton closeness should be 0")
	}
	if h := HarmonicCentrality(single, par.Options{}); h[0] != 0 {
		t.Fatal("singleton harmonic should be 0")
	}
}
