package algo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperline/internal/graph"
)

func TestWeightedDistancesUnitCostMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(40), r.Intn(80))
		unit := func(uint32) float64 { return 1 }
		for src := 0; src < g.NumNodes(); src += 3 {
			wd := WeightedDistances(g, uint32(src), unit)
			bd := BFSDistances(g, uint32(src))
			for v := range wd {
				if bd[v] < 0 {
					if !math.IsInf(wd[v], 1) {
						return false
					}
					continue
				}
				if wd[v] != float64(bd[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDistancesInverseOverlap(t *testing.T) {
	// Path 0 -(w4)- 1 -(w2)- 2, plus direct 0 -(w1)- 2.
	// Inverse-overlap: via 1 costs 1/4+1/2 = 0.75 < direct 1.
	g := graph.Build(3, []graph.Edge{
		{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 1},
	}, false)
	d := WeightedDistances(g, 0, nil)
	if math.Abs(d[2]-0.75) > 1e-12 {
		t.Fatalf("d(0,2) = %f, want 0.75 (through the strong overlaps)", d[2])
	}
	if math.Abs(d[1]-0.25) > 1e-12 {
		t.Fatalf("d(0,1) = %f, want 0.25", d[1])
	}
}

func TestWeightedDistancesMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		var edges []graph.Edge
		for k := 0; k < 40; k++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: uint32(1 + r.Intn(9))})
			}
		}
		g := graph.Build(n, edges, false)
		got := WeightedDistances(g, 0, nil)
		want := bellmanFord(g, 0)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				return false
			}
			if !math.IsInf(want[v], 1) && math.Abs(got[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func bellmanFord(g *graph.Graph, src uint32) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			ids, ws := g.Neighbors(uint32(u))
			for k, v := range ids {
				if nd := dist[u] + 1/float64(ws[k]); nd < dist[v]-1e-15 {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestWeightedEccentricity(t *testing.T) {
	g := graph.Build(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	}, false)
	unit := func(uint32) float64 { return 1 }
	if e := WeightedEccentricity(g, 0, unit); e != 2 {
		t.Fatalf("ecc = %f, want 2", e)
	}
	if e := WeightedEccentricity(g, 3, unit); e != 0 {
		t.Fatalf("isolated ecc = %f, want 0", e)
	}
}

func TestWeightedDistancesNegativeCostPanics(t *testing.T) {
	g := graph.Build(2, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative cost")
		}
	}()
	WeightedDistances(g, 0, func(uint32) float64 { return -1 })
}
