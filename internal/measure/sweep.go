package measure

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// SweepRow is one s value of an s-sweep: the projection's shape plus
// the measure value computed on it.
type SweepRow struct {
	S     int
	Nodes int
	Edges int
	// HyperedgeIDs maps projection nodes to input hyperedge IDs
	// (needed to label per-node vectors; may be nil for scalar
	// measures).
	HyperedgeIDs []uint32
	Value        *Value
}

// WriteSweepTable renders an s-sweep as the tab-separated tables the
// paper's application sections report (Tables I and V are s-sweeps of
// exactly this shape). Scalar measures print one row per s; per-node
// measures print the top-K nodes per s, ranked by descending value with
// ties broken by ascending hyperedge ID. The output is
// byte-deterministic for a given sweep — the golden-file tests pin it
// as the repo's end-to-end paper-fidelity guard.
func WriteSweepTable(w io.Writer, measureName string, params Params, topK int, rows []SweepRow) error {
	if topK <= 0 {
		topK = 5
	}
	header := fmt.Sprintf("# measure=%s", measureName)
	if ps := params.CanonicalString(); ps != "" {
		header += " params=" + ps
	}
	sorted := append([]SweepRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].S < sorted[j].S })

	scalarShape := true
	for _, r := range sorted {
		if r.Value != nil && r.Value.Scalar == nil {
			scalarShape = false
		}
	}
	if scalarShape {
		if _, err := fmt.Fprintf(w, "%s\ns\tnodes\tedges\t%s\n", header, measureName); err != nil {
			return err
		}
		for _, r := range sorted {
			v := 0.0
			if r.Value != nil && r.Value.Scalar != nil {
				v = *r.Value.Scalar
			}
			if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", r.S, r.Nodes, r.Edges, formatNum(v)); err != nil {
				return err
			}
		}
		return nil
	}

	if _, err := fmt.Fprintf(w, "%s top=%d\ns\tnodes\tedges\trank\thyperedge\t%s\n", header, topK, measureName); err != nil {
		return err
	}
	for _, r := range sorted {
		for rank, e := range topEntries(r, topK) {
			if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\n",
				r.S, r.Nodes, r.Edges, rank+1, e.id, formatNum(e.score)); err != nil {
				return err
			}
		}
	}
	return nil
}

type sweepEntry struct {
	id    uint32
	score float64
}

// topEntries ranks a per-node vector by descending value, ties broken
// by ascending hyperedge ID, and returns the first k entries.
func topEntries(r SweepRow, k int) []sweepEntry {
	if r.Value == nil {
		return nil
	}
	var entries []sweepEntry
	switch {
	case r.Value.Scores != nil:
		entries = make([]sweepEntry, len(r.Value.Scores))
		for u, s := range r.Value.Scores {
			entries[u] = sweepEntry{id: nodeID(r, u), score: s}
		}
	case r.Value.Ints != nil:
		entries = make([]sweepEntry, len(r.Value.Ints))
		for u, s := range r.Value.Ints {
			entries[u] = sweepEntry{id: nodeID(r, u), score: float64(s)}
		}
	default:
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score {
			return entries[i].score > entries[j].score
		}
		return entries[i].id < entries[j].id
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

func nodeID(r SweepRow, u int) uint32 {
	if u < len(r.HyperedgeIDs) {
		return r.HyperedgeIDs[u]
	}
	return uint32(u)
}

// formatNum renders a value compactly and deterministically: integral
// values print without a fractional part (component counts, diameters),
// everything else with 6 fractional digits.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 6, 64)
}
