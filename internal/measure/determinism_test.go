package measure

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/gen"
	"hyperline/internal/hg"
	"hyperline/internal/par"
)

func parOpt(workers int) par.Options { return par.Options{Workers: workers} }

// determinismGraphs are seeded generator outputs in the two regimes
// that matter for Stage 5: overlapping communities (non-trivial
// s-overlaps at s > 1) and skewed degree distributions.
func determinismGraphs() map[string]*hg.Hypergraph {
	return map[string]*hg.Hypergraph{
		"community": gen.Community(gen.CommunityConfig{
			Seed: 7, NumVertices: 60, NumCommunities: 5,
			MeanCommunitySize: 9, EdgesPerCommunity: 6, Background: 10,
		}),
		"zipf": gen.Zipf(gen.ZipfConfig{
			Seed: 21, NumVertices: 50, NumEdges: 40, MeanEdgeSize: 5, Skew: 1.3,
		}),
	}
}

// measureParamsFor builds canonical params for a measure on a concrete
// projection (single-source measures need a source that exists in it).
func measureParamsFor(t *testing.T, m Measure, res *core.PipelineResult) Params {
	t.Helper()
	raw := map[string]string{}
	for _, spec := range m.Params() {
		if spec.Name == "source" {
			if res.Graph.NumNodes() == 0 {
				t.Skip("empty projection has no source")
			}
			raw["source"] = fmt.Sprint(res.HyperedgeIDs[0])
		}
	}
	p, err := Canonicalize(m, raw)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exactStrategyConfigs returns one pipeline config per registered
// Stage-3 strategy, all in the exact-weight output class, so their
// projections — and therefore every measure on them — must be
// byte-identical (the PR-3 cross-strategy contract extended to Stage
// 5).
func exactStrategyConfigs() map[string]core.PipelineConfig {
	out := map[string]core.PipelineConfig{}
	for _, st := range core.Strategies() {
		cfg := core.PipelineConfig{Core: core.Config{Algorithm: st.Algorithm()}}
		// Algorithm 1 short-circuits weights by default; exact mode
		// puts it in the same output class as the others.
		cfg.Core.DisableShortCircuit = true
		out[st.Name()] = cfg
	}
	return out
}

// TestMeasureDeterminismAcrossWorkers asserts the engine's core
// contract: every registered measure returns bit-identical values for
// workers ∈ {1, 4, GOMAXPROCS} and for blocked vs cyclic distribution.
func TestMeasureDeterminismAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for gname, h := range determinismGraphs() {
		for _, s := range []int{1, 2, 3} {
			res, _ := core.Run(context.Background(), h, s, core.PipelineConfig{})
			if res.Graph.NumNodes() == 0 {
				continue
			}
			for _, name := range Names() {
				m, err := Get(name)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(fmt.Sprintf("%s/s=%d/%s", gname, s, name), func(t *testing.T) {
					p := measureParamsFor(t, m, res)
					base, err := m.Compute(context.Background(), res, p, parOpt(1))
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range workerCounts {
						for _, strat := range []par.Strategy{par.Blocked, par.Cyclic} {
							got, err := m.Compute(context.Background(), res, p, par.Options{Workers: w, Strategy: strat, Grain: 2})
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, base) {
								t.Fatalf("workers=%d strategy=%v changed %s:\n%+v\nvs workers=1:\n%+v",
									w, strat, name, got, base)
							}
						}
					}
				})
			}
		}
	}
}

// TestMeasureDeterminismAcrossStrategies asserts that every registered
// measure is identical on projections produced by every registered
// exact-class Stage-3 strategy: the measures engine composes with the
// pluggable execution engine without observable differences.
func TestMeasureDeterminismAcrossStrategies(t *testing.T) {
	cfgs := exactStrategyConfigs()
	if len(cfgs) < 4 {
		t.Fatalf("expected at least 4 registered strategies, got %d", len(cfgs))
	}
	for gname, h := range determinismGraphs() {
		for _, s := range []int{1, 2, 3} {
			baseRes, _ := core.Run(context.Background(), h, s, core.PipelineConfig{})
			if baseRes.Graph.NumNodes() == 0 {
				continue
			}
			for _, name := range Names() {
				m, err := Get(name)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(fmt.Sprintf("%s/s=%d/%s", gname, s, name), func(t *testing.T) {
					p := measureParamsFor(t, m, baseRes)
					base, err := m.Compute(context.Background(), baseRes, p, parOpt(2))
					if err != nil {
						t.Fatal(err)
					}
					for stName, cfg := range cfgs {
						res, _ := core.Run(context.Background(), h, s, cfg)
						got, err := m.Compute(context.Background(), res, p, parOpt(2))
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, base) {
							t.Fatalf("strategy %s changed %s:\n%+v\nvs planner default:\n%+v",
								stName, name, got, base)
						}
					}
				})
			}
		}
	}
}
