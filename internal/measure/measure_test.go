package measure

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hyperline/internal/core"
	"hyperline/internal/hg"
)

func paperExample() *hg.Hypergraph {
	return hg.FromEdgeSlices([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{0, 1, 2, 3, 4},
		{4, 5},
	}, 6)
}

func TestRegistryNamesAndGet(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("expected a full registry, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{
		"components", "components-lp", "distances", "wdistances",
		"eccentricity", "diameter", "closeness", "harmonic",
		"betweenness", "pagerank", "clustering", "clustering-global",
		"connectivity",
	} {
		if _, err := Get(want); err != nil {
			t.Fatalf("registry missing %s: %v", want, err)
		}
	}
	_, err := Get("nope")
	if err == nil {
		t.Fatal("unknown measure must error")
	}
	// The error is the menu: every registered name must be listed, so
	// a typo surfaces the full choice instead of a silent default.
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-measure error does not list %q: %v", name, err)
		}
	}
}

func TestInfos(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos() covers %d measures, registry has %d", len(infos), len(Names()))
	}
	for _, info := range infos {
		if info.Doc == "" || info.Cost == "?" {
			t.Fatalf("measure %s has incomplete metadata: %+v", info.Name, info)
		}
	}
}

func TestCanonicalize(t *testing.T) {
	dist, _ := Get("distances")
	if _, err := Canonicalize(dist, nil); err == nil {
		t.Fatal("distances without source must fail")
	}
	if _, err := Canonicalize(dist, map[string]string{"source": "x"}); err == nil {
		t.Fatal("non-integer source must fail")
	}
	if _, err := Canonicalize(dist, map[string]string{"source": "1", "bogus": "2"}); err == nil {
		t.Fatal("undeclared parameter must fail")
	}
	p, err := Canonicalize(dist, map[string]string{"source": "007"})
	if err != nil {
		t.Fatal(err)
	}
	if p.CanonicalString() != "source=7" {
		t.Fatalf("source not normalized: %q", p.CanonicalString())
	}

	pr, _ := Get("pagerank")
	p, err = Canonicalize(pr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.CanonicalString() != "damping=0.85" {
		t.Fatalf("default damping not filled: %q", p.CanonicalString())
	}
	// Equivalent spellings share one canonical form (one cache key).
	p2, err := Canonicalize(pr, map[string]string{"damping": "0.850"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.CanonicalString() != p.CanonicalString() {
		t.Fatalf("equivalent damping spellings diverge: %q vs %q",
			p2.CanonicalString(), p.CanonicalString())
	}
	if _, err := Canonicalize(pr, map[string]string{"damping": "1.5"}); err == nil {
		t.Fatal("out-of-range damping must fail")
	}

	comp, _ := Get("components")
	p, err = Canonicalize(comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.CanonicalString() != "" {
		t.Fatalf("parameterless measure has params: %q", p.CanonicalString())
	}
}

func TestComponentsOnPaperExample(t *testing.T) {
	res, _ := core.Run(context.Background(), paperExample(), 2, core.PipelineConfig{})
	m, _ := Get("components")
	v, err := m.Compute(context.Background(), res, nil, parOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	// s=2: hyperedges {0,1,2} form one component, hyperedge 3 has no
	// 2-incident pair and is not a node at all.
	if v.Scalar == nil || *v.Scalar != 1 {
		t.Fatalf("components scalar = %v, want 1", v.Scalar)
	}
	if len(v.Groups) != 1 || len(v.Groups[0]) != 3 {
		t.Fatalf("groups = %v", v.Groups)
	}
}

func TestDistancesSourceValidation(t *testing.T) {
	res, _ := core.Run(context.Background(), paperExample(), 2, core.PipelineConfig{})
	m, _ := Get("distances")
	p, err := Canonicalize(m, map[string]string{"source": "3"})
	if err != nil {
		t.Fatal(err)
	}
	// Hyperedge 3 has no node in the 2-line graph.
	if _, err := m.Compute(context.Background(), res, p, parOpt(1)); err == nil {
		t.Fatal("absent source hyperedge must fail")
	}
	p, _ = Canonicalize(m, map[string]string{"source": "0"})
	v, err := m.Compute(context.Background(), res, p, parOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Ints) != res.Graph.NumNodes() {
		t.Fatalf("distances length %d, want %d", len(v.Ints), res.Graph.NumNodes())
	}
}

func TestWriteSweepTableScalar(t *testing.T) {
	var b bytes.Buffer
	err := WriteSweepTable(&b, "components", nil, 5, []SweepRow{
		{S: 2, Nodes: 3, Edges: 3, Value: &Value{Scalar: scalar(1)}},
		{S: 1, Nodes: 4, Edges: 4, Value: &Value{Scalar: scalar(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "# measure=components\ns\tnodes\tedges\tcomponents\n1\t4\t4\t1\n2\t3\t3\t1\n"
	if b.String() != want {
		t.Fatalf("scalar table:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestWriteSweepTableVector(t *testing.T) {
	var b bytes.Buffer
	err := WriteSweepTable(&b, "harmonic", nil, 2, []SweepRow{
		{
			S: 1, Nodes: 3, Edges: 2,
			HyperedgeIDs: []uint32{10, 11, 12},
			Value:        &Value{Scores: []float64{0.5, 1, 0.5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 is the max score; the tie at 0.5 breaks by ascending
	// hyperedge ID.
	want := "# measure=harmonic top=2\ns\tnodes\tedges\trank\thyperedge\tharmonic\n" +
		"1\t3\t2\t1\t11\t1\n1\t3\t2\t2\t10\t0.500000\n"
	if b.String() != want {
		t.Fatalf("vector table:\n%q\nwant:\n%q", b.String(), want)
	}
}
