package measure

import (
	"fmt"
	"sort"
)

// registry maps measure names to implementations. Populated at init;
// Register allows tests and extensions to add entries before queries
// run, mirroring core.RegisterStrategy.
var registry = map[string]Measure{}

// Register adds m to the registry, replacing any previous measure with
// the same name. Not safe for concurrent use with running queries —
// register during initialization.
func Register(m Measure) {
	registry[m.Name()] = m
}

// Get resolves a measure name. The error lists every registered
// measure, so a typo in a request surfaces the full menu instead of a
// silent default.
func Get(name string) (Measure, error) {
	m, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("measure: unknown measure %q (registered: %s)", name, nameList())
	}
	return m, nil
}

// Names lists the registered measure names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func nameList() string {
	names := Names()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Info describes one registered measure for listings (the /v1/measures
// endpoint).
type Info struct {
	Name   string      `json:"name"`
	Doc    string      `json:"doc"`
	Cost   string      `json:"cost"`
	Params []ParamSpec `json:"params,omitempty"`
}

// Infos describes every registered measure, sorted by name.
func Infos() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Names() {
		m := registry[name]
		out = append(out, Info{Name: m.Name(), Doc: m.Doc(), Cost: m.Cost().String(), Params: m.Params()})
	}
	return out
}
