package measure

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"hyperline/internal/algo"
	"hyperline/internal/core"
	"hyperline/internal/par"
	"hyperline/internal/spectral"
)

// builtin implements Measure for the registry entries below: one struct
// with a compute closure instead of a named type per measure.
type builtin struct {
	name    string
	doc     string
	params  []ParamSpec
	cost    Cost
	compute func(res *core.PipelineResult, p Params, opt par.Options) (*Value, error)
}

func (b *builtin) Name() string        { return b.name }
func (b *builtin) Doc() string         { return b.doc }
func (b *builtin) Params() []ParamSpec { return b.params }
func (b *builtin) Cost() Cost          { return b.cost }

// Compute checks the context on entry — a request that was cancelled
// while its projection was being fetched never starts evaluating — and
// then runs the closure to completion. The built-in algorithms are not
// internally cancellable; the expensive all-pairs ones are bounded by
// the projection size the caller already chose to materialize.
func (b *builtin) Compute(ctx context.Context, res *core.PipelineResult, p Params, opt par.Options) (*Value, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return b.compute(res, p, opt)
}

// canonUint32 validates a non-negative integer parameter < 2³² and
// normalizes its spelling.
func canonUint32(v string) (string, error) {
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return "", fmt.Errorf("want a hyperedge ID (integer in [0, 2³²)), got %q", v)
	}
	return strconv.FormatUint(n, 10), nil
}

// canonDamping validates a PageRank damping factor in (0, 1) and
// normalizes its spelling.
func canonDamping(v string) (string, error) {
	d, err := strconv.ParseFloat(v, 64)
	if err != nil || d <= 0 || d >= 1 {
		return "", fmt.Errorf("want a damping factor in (0, 1), got %q", v)
	}
	return strconv.FormatFloat(d, 'g', -1, 64), nil
}

// sourceParam is the shared "source" parameter of the single-source
// distance measures.
var sourceParam = ParamSpec{
	Name:     "source",
	Doc:      "input hyperedge ID distances are measured from",
	Required: true,
	Canon:    canonUint32,
}

// sourceNode resolves the canonical "source" parameter to a projection
// node, failing when the hyperedge has no node (no s-incident pair).
func sourceNode(res *core.PipelineResult, p Params) (uint32, error) {
	src, err := strconv.ParseUint(p["source"], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("measure: bad source %q", p["source"])
	}
	for u, id := range res.HyperedgeIDs {
		if id == uint32(src) {
			return uint32(u), nil
		}
	}
	return 0, fmt.Errorf("measure: hyperedge %d has no node in this projection (no s-incident pair)", src)
}

// componentsValue converts a component labeling into a Value: the count
// plus membership groups expressed in input hyperedge IDs.
func componentsValue(res *core.PipelineResult, cc *algo.Components) *Value {
	members := cc.Members()
	groups := make([][]uint32, len(members))
	for i, ms := range members {
		ids := make([]uint32, len(ms))
		for j, u := range ms {
			ids[j] = res.HyperedgeID(u)
		}
		groups[i] = ids
	}
	return &Value{Scalar: scalar(float64(cc.Count)), Groups: groups}
}

func init() {
	Register(&builtin{
		name: "components",
		doc:  "s-connected components: count and membership (union-find reference)",
		cost: CostLinear,
		compute: func(res *core.PipelineResult, _ Params, _ par.Options) (*Value, error) {
			return componentsValue(res, algo.ConnectedComponents(res.Graph)), nil
		},
	})
	Register(&builtin{
		name: "components-lp",
		doc:  "s-connected components via parallel label propagation (Table V's LPCC)",
		cost: CostLinear,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return componentsValue(res, algo.LabelPropagationCC(res.Graph, opt)), nil
		},
	})
	Register(&builtin{
		name:   "distances",
		doc:    "s-distances (shortest s-walk hop counts) from one hyperedge; -1 = unreachable",
		params: []ParamSpec{sourceParam},
		cost:   CostLinear,
		compute: func(res *core.PipelineResult, p Params, _ par.Options) (*Value, error) {
			src, err := sourceNode(res, p)
			if err != nil {
				return nil, err
			}
			return &Value{Ints: algo.BFSDistances(res.Graph, src)}, nil
		},
	})
	Register(&builtin{
		name:   "wdistances",
		doc:    "overlap-weighted s-distances from one hyperedge (edge cost 1/W); -1 = unreachable",
		params: []ParamSpec{sourceParam},
		cost:   CostLinear,
		compute: func(res *core.PipelineResult, p Params, _ par.Options) (*Value, error) {
			src, err := sourceNode(res, p)
			if err != nil {
				return nil, err
			}
			dist := algo.WeightedDistances(res.Graph, src, func(w uint32) float64 { return 1 / float64(w) })
			for i, d := range dist {
				if math.IsInf(d, 1) {
					dist[i] = -1
				}
			}
			return &Value{Scores: dist}, nil
		},
	})
	Register(&builtin{
		name: "eccentricity",
		doc:  "s-eccentricity of every hyperedge (maximum finite s-distance)",
		cost: CostAllPairs,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Ints: algo.Eccentricities(res.Graph, opt)}, nil
		},
	})
	Register(&builtin{
		name: "diameter",
		doc:  "s-diameter: the longest shortest s-walk between s-connected hyperedges",
		cost: CostAllPairs,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			var max int32
			for _, e := range algo.Eccentricities(res.Graph, opt) {
				if e > max {
					max = e
				}
			}
			return &Value{Scalar: scalar(float64(max))}, nil
		},
	})
	Register(&builtin{
		name: "closeness",
		doc:  "s-closeness centrality (Wasserman-Faust corrected for disconnected graphs)",
		cost: CostAllPairs,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Scores: algo.ClosenessCentrality(res.Graph, opt)}, nil
		},
	})
	Register(&builtin{
		name: "harmonic",
		doc:  "s-harmonic centrality, normalized by n-1",
		cost: CostAllPairs,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Scores: algo.HarmonicCentrality(res.Graph, opt)}, nil
		},
	})
	Register(&builtin{
		name: "betweenness",
		doc:  "s-betweenness centrality (Brandes), normalized to [0, 1]",
		cost: CostAllPairs,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Scores: algo.Normalize(algo.Betweenness(res.Graph, opt))}, nil
		},
	})
	Register(&builtin{
		name: "pagerank",
		doc:  "PageRank of the projection (Table II's disease ranking measure)",
		params: []ParamSpec{{
			Name:    "damping",
			Doc:     "damping factor in (0, 1)",
			Default: "0.85",
			Canon:   canonDamping,
		}},
		cost: CostIterative,
		compute: func(res *core.PipelineResult, p Params, opt par.Options) (*Value, error) {
			d, err := strconv.ParseFloat(p["damping"], 64)
			if err != nil {
				return nil, fmt.Errorf("measure: bad damping %q", p["damping"])
			}
			return &Value{Scores: algo.PageRank(res.Graph, algo.PageRankOptions{Damping: d, Par: opt})}, nil
		},
	})
	Register(&builtin{
		name: "clustering",
		doc:  "local clustering coefficient of every hyperedge (transitivity of s-incidence)",
		cost: CostLinear,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Scores: algo.ClusteringCoefficients(res.Graph, opt)}, nil
		},
	})
	Register(&builtin{
		name: "clustering-global",
		doc:  "global clustering coefficient (transitivity) of the projection",
		cost: CostLinear,
		compute: func(res *core.PipelineResult, _ Params, opt par.Options) (*Value, error) {
			return &Value{Scalar: scalar(algo.GlobalClusteringCoefficient(res.Graph, opt))}, nil
		},
	})
	Register(&builtin{
		name: "connectivity",
		doc:  "normalized algebraic connectivity λ₂ of the largest component (Fig. 6)",
		cost: CostIterative,
		compute: func(res *core.PipelineResult, _ Params, _ par.Options) (*Value, error) {
			return &Value{Scalar: scalar(spectral.NormalizedAlgebraicConnectivity(res.Graph, spectral.Options{}))}, nil
		},
	})
}
