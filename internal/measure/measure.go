// Package measure is Stage 5 of the framework as a pluggable engine:
// every s-measure the paper's application studies report (component
// counts, s-distances, diameters, centralities, clustering, algebraic
// connectivity) is a Measure — a named, parameterized, deterministic
// computation over a materialized projection — registered in a global
// registry, mirroring the Strategy registry that Stage 3 uses.
//
// The registry is what the serving layer builds on: a measure's name
// plus its canonical parameter string extend the pipeline cache key, so
// a repeated measure request on a warmed dataset is a pure cache hit
// (no recomputation), and an s-sweep of a measure reuses one batched
// Stage 1-4 pass plus one Compute per uncached s.
//
// Determinism is a hard contract, not a convention: Compute must return
// bit-identical results for a given projection regardless of
// par.Options (worker count, grain, workload distribution). Every
// built-in satisfies it — per-node outputs are computed entirely within
// one loop iteration, and the two iterative measures (PageRank,
// betweenness) use worker-independent reduction orders — and the
// property tests in this package enforce it across workers and across
// pipeline strategies.
package measure

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hyperline/internal/core"
	"hyperline/internal/par"
)

// Cost is a coarse cost hint for one measure evaluation, letting
// callers (the serving layer, capacity planners) order or gate work
// without knowing the implementation.
type Cost uint8

const (
	// CostLinear measures run in roughly O(n + m) — one pass over the
	// projection (components, clustering, single-source distances).
	CostLinear Cost = iota
	// CostIterative measures run a convergence loop of O(n + m)
	// passes (PageRank, spectral connectivity).
	CostIterative
	// CostAllPairs measures run one traversal per node — O(n·(n+m))
	// (eccentricity, diameter, closeness, harmonic, betweenness).
	CostAllPairs
)

// String names the cost class.
func (c Cost) String() string {
	switch c {
	case CostLinear:
		return "linear"
	case CostIterative:
		return "iterative"
	case CostAllPairs:
		return "all-pairs"
	default:
		return "?"
	}
}

// ParamSpec describes one parameter a measure accepts.
type ParamSpec struct {
	// Name is the parameter's key (also its HTTP query parameter).
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Required marks parameters without a usable default.
	Required bool `json:"required,omitempty"`
	// Default is the value assumed when the parameter is omitted
	// (empty for required parameters).
	Default string `json:"default,omitempty"`
	// Canon validates and normalizes a supplied value ("0.850" →
	// "0.85") so equivalent spellings share one cache key and bad
	// values are rejected before any pipeline work runs. Nil means
	// the value is taken verbatim.
	Canon func(string) (string, error) `json:"-"`
}

// Params is a validated, canonicalized parameter assignment: every key
// appears in the measure's schema and defaults are filled in. Build one
// with Canonicalize.
type Params map[string]string

// CanonicalString renders p as "k=v,k=v" with keys sorted — the
// parameter component of a measure cache key. Identical assignments
// (including an omitted parameter vs its explicit default) render
// identically.
func (p Params) CanonicalString() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p[k])
	}
	return b.String()
}

// Value is one measure result. Exactly which fields are set depends on
// the measure's shape: Scalar for single-number measures (diameter,
// component count, connectivity), Scores or Ints for per-node vectors
// (parallel to the projection's HyperedgeIDs mapping), Groups for node
// groupings expressed in input hyperedge IDs (component membership).
// Values are immutable once returned: the serving layer shares them by
// reference across cached requests.
type Value struct {
	// Scalar is the single-number result, when the measure has one.
	Scalar *float64 `json:"scalar,omitempty"`
	// Scores is a per-node float vector, indexed by projection node.
	Scores []float64 `json:"scores,omitempty"`
	// Ints is a per-node integer vector, indexed by projection node
	// (distances and eccentricities; -1 marks unreachable).
	Ints []int32 `json:"ints,omitempty"`
	// Groups lists node groups in input hyperedge IDs, each group
	// ascending, groups ordered by their smallest member.
	Groups [][]uint32 `json:"groups,omitempty"`
}

// scalar wraps a float64 for Value.Scalar.
func scalar(v float64) *float64 { return &v }

// Measure is one Stage-5 s-measure: a named, parameterized computation
// over a materialized projection.
//
// Compute must be deterministic: bit-identical output for a given
// (projection, params) pair regardless of opt — worker count, grain,
// and workload distribution are execution knobs only, exactly like the
// Stage-3 strategy contract. This is what makes measure results
// cacheable under a key that excludes execution options.
type Measure interface {
	// Name is the measure's stable registry identifier.
	Name() string
	// Doc is a one-line description for listings.
	Doc() string
	// Params is the accepted parameter schema.
	Params() []ParamSpec
	// Cost hints the relative evaluation cost.
	Cost() Cost
	// Compute evaluates the measure on a projection with canonical
	// params (as produced by Canonicalize). Implementations must honor
	// ctx at least on entry (returning ctx.Err() instead of starting
	// work on a dead context); a nil ctx means context.Background().
	Compute(ctx context.Context, res *core.PipelineResult, p Params, opt par.Options) (*Value, error)
}

// Canonicalize validates raw parameters against m's schema and returns
// the canonical assignment: unknown keys are rejected, defaults are
// filled in, and required parameters must be present and non-empty.
func Canonicalize(m Measure, raw map[string]string) (Params, error) {
	specs := m.Params()
	byName := make(map[string]ParamSpec, len(specs))
	for _, s := range specs {
		byName[s.Name] = s
	}
	for k := range raw {
		if _, ok := byName[k]; !ok {
			return nil, fmt.Errorf("measure: %s does not accept parameter %q (accepts: %s)",
				m.Name(), k, paramNames(specs))
		}
	}
	p := make(Params, len(specs))
	for _, s := range specs {
		v, ok := raw[s.Name]
		if !ok || v == "" {
			if s.Required {
				return nil, fmt.Errorf("measure: %s requires parameter %q (%s)", m.Name(), s.Name, s.Doc)
			}
			v = s.Default
		}
		if v != "" && s.Canon != nil {
			cv, err := s.Canon(v)
			if err != nil {
				return nil, fmt.Errorf("measure: %s parameter %q: %w", m.Name(), s.Name, err)
			}
			v = cv
		}
		if v != "" {
			p[s.Name] = v
		}
	}
	return p, nil
}

func paramNames(specs []ParamSpec) string {
	if len(specs) == 0 {
		return "none"
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}
