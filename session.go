package hyperline

import (
	"context"
	"io"

	"hyperline/internal/core"
	"hyperline/internal/measure"
	"hyperline/internal/serve"
)

// CacheStats is a snapshot of a Session's result-cache counters.
type CacheStats = serve.CacheStats

// MeasureCacheStats is a snapshot of a Session's measure-cache
// counters, including the number of actual measure evaluations run.
type MeasureCacheStats = serve.MeasureCacheStats

// DatasetInfo describes one dataset registered in a Session.
type DatasetInfo = serve.DatasetInfo

// MeasureInfo describes one registered Stage-5 measure (name, doc,
// cost hint, parameter schema).
type MeasureInfo = measure.Info

// MeasureValue is one measure result: a scalar, a per-node vector
// (float or integer), or node groups in input hyperedge IDs, depending
// on the measure's shape. Values served from a Session are shared and
// must be treated as immutable.
type MeasureValue = measure.Value

// MeasureResult is one served measure evaluation: the value, the
// projection shape it was computed on, and cache provenance.
type MeasureResult = serve.MeasureResult

// CalibrationInfo is the self-calibrating planner's observed Stage-3
// cost state for one dataset version: every (strategy, relabel, toplex,
// batch-shape) cell the session has measured, per orientation.
type CalibrationInfo = serve.CalibrationInfo

// CostObservation is one exported cell of a calibration table.
type CostObservation = core.CostObservation

// Priority classifies a query's Stage-3 work for admission control in
// a Session (or server) configured with admission limits.
type Priority = serve.Priority

const (
	// PriorityInteractive marks user-facing queries: under saturation
	// they wait in the bounded admission queue before being shed.
	PriorityInteractive = serve.PriorityInteractive
	// PriorityBackground marks deferrable work (warmup, bulk seeding):
	// under saturation it is shed immediately, never queued.
	PriorityBackground = serve.PriorityBackground
)

// ErrSaturated marks queries shed by admission control; test with
// errors.Is. The concrete error is a *serve.SaturatedError carrying a
// Retry-After estimate.
var ErrSaturated = serve.ErrSaturated

// AdmissionStats is a snapshot of a Session's admission controller:
// configured limits, live occupancy, and admitted/shed counters.
type AdmissionStats = serve.AdmissionStats

// SpillStats is a snapshot of a Session's on-disk cache tier: entry and
// byte counts against the budget, plus hit/miss/write/eviction
// counters.
type SpillStats = serve.SpillStats

// Measures lists every registered Stage-5 measure, sorted by name.
func Measures() []MeasureInfo { return measure.Infos() }

// SessionOptions configures a Session.
type SessionOptions struct {
	// CacheEntries is the LRU capacity in cached results (0 = 128).
	CacheEntries int
	// MeasureCacheEntries is the LRU capacity in cached measure
	// values (0 = 1024).
	MeasureCacheEntries int
	// MaxInflight bounds concurrently admitted Stage-3 passes
	// (0 = unlimited); excess interactive queries wait in a bounded
	// queue, then shed with ErrSaturated. Cache hits are never gated.
	MaxInflight int
	// ShedCostBudget bounds the summed planner-estimated cost of
	// admitted Stage-3 work, in ~1ms cost units (0 = unlimited).
	ShedCostBudget int64
	// MaxQueue bounds the interactive admission wait queue
	// (0 = a small default).
	MaxQueue int
	// MaxInflightPerDataset bounds concurrently admitted Stage-3
	// passes per dataset (0 = unlimited); a dataset at its quota sheds
	// immediately with ErrSaturated.
	MaxInflightPerDataset int

	// SpillDir, when non-empty, attaches a disk tier under both
	// caches: entries evicted from memory serialize there and memory
	// misses probe it before recomputing. Honored by OpenSession
	// (NewSession ignores persistence options — it cannot report
	// setup errors).
	SpillDir string
	// SpillBudgetBytes bounds the spill directory (<= 0 = unbounded);
	// least recently used files are removed past it.
	SpillBudgetBytes int64
	// StateDir, when non-empty, makes OpenSession restore a registry
	// snapshot written by SaveState (a warm start; a missing or empty
	// directory is a cold start). Pair with SaveState on the way out.
	StateDir string
}

// Session is a long-lived facade over the pipeline with a shared result
// cache — the library-side counterpart of the hyperlined server. The
// paper's applications query the same hypergraph at many s values;
// a Session computes each distinct projection once and serves repeats
// from an LRU keyed by (dataset, s, output-relevant options).
// Concurrent identical requests are deduplicated: they run Stages 1-4
// once and share the result. All methods are safe for concurrent use.
//
// Cached results are shared by reference and must be treated as
// immutable, exactly like the return values of SLineGraph.
type Session struct {
	svc *serve.Service
}

// NewSession returns an empty session. Persistence options (SpillDir,
// StateDir) are ignored here — use OpenSession, which can report their
// setup errors.
func NewSession(opt SessionOptions) *Session {
	return &Session{svc: serve.New(serve.Config{
		CacheEntries:          opt.CacheEntries,
		MeasureCacheEntries:   opt.MeasureCacheEntries,
		MaxInflight:           opt.MaxInflight,
		ShedCostBudget:        opt.ShedCostBudget,
		MaxQueue:              opt.MaxQueue,
		MaxInflightPerDataset: opt.MaxInflightPerDataset,
	})}
}

// OpenSession returns a session honoring every option, including the
// persistence ones: with SpillDir set it attaches the disk cache tier,
// and with StateDir set it restores any registry snapshot found there —
// a warm start whose first queries hit the spill tier instead of
// recomputing. Sessions opened this way should SaveState (to snapshot)
// and Close (to unmap datasets) on the way out.
func OpenSession(opt SessionOptions) (*Session, error) {
	s := NewSession(opt)
	if opt.SpillDir != "" {
		if err := s.svc.EnableSpill(opt.SpillDir, opt.SpillBudgetBytes); err != nil {
			return nil, err
		}
	}
	if opt.StateDir != "" {
		if _, err := s.svc.RestoreState(opt.StateDir); err != nil {
			s.svc.Close()
			return nil, err
		}
	}
	return s, nil
}

// SaveState persists the session's registry into dir and flushes both
// caches through the spill store (when attached), so a later
// OpenSession with StateDir == dir boots warm. See serve.SaveState.
func (s *Session) SaveState(dir string) error { return s.svc.SaveState(dir) }

// RestoreState rehydrates datasets from a state directory written by
// SaveState, mapping their files rather than parsing them. A missing
// manifest is a cold start. Returns the restored dataset names.
func (s *Session) RestoreState(dir string) ([]string, error) { return s.svc.RestoreState(dir) }

// SpillStats snapshots the disk cache tier; zero-valued when no spill
// directory is attached.
func (s *Session) SpillStats() SpillStats { return s.svc.SpillStats() }

// Close unmaps every mapped dataset. Call it when done with a session
// that loaded binary files or restored state; outstanding results must
// no longer be read afterwards.
func (s *Session) Close() error { return s.svc.Close() }

// Add registers h under name, replacing any previous dataset with that
// name (its cached results are invalidated).
func (s *Session) Add(name string, h *Hypergraph) { s.svc.Add(name, h) }

// Load reads a hypergraph from path (format by extension, as Load) and
// registers it under name.
func (s *Session) Load(name, path string) error { return s.svc.Load(name, path) }

// Remove drops the named dataset, reporting whether it existed.
func (s *Session) Remove(name string) bool { return s.svc.Remove(name) }

// Datasets lists the registered datasets sorted by name.
func (s *Session) Datasets() []DatasetInfo { return s.svc.Datasets() }

// SLineGraph returns the s-line graph of the named dataset, computing
// it at most once per (dataset, s, output-relevant options): repeats —
// and requests differing only in execution knobs such as Workers or
// Counters — are served from the cache.
// Deprecated: use Session.Execute with a Query — it adds cancellation,
// deadlines, batching, measures, and per-s errors, and serves from the
// same caches. This wrapper produces identical output.
func (s *Session) SLineGraph(name string, sVal int, opt Options) (*Result, error) {
	res, _, err := s.svc.SLineGraph(context.Background(), name, sVal, opt.pipeline())
	return res, err
}

// SCliqueGraph returns the s-clique graph of the named dataset, cached
// like SLineGraph.
// Deprecated: use Session.Execute with a Query{Kind: KindClique}.
func (s *Session) SCliqueGraph(name string, sVal int, opt Options) (*Result, error) {
	res, _, err := s.svc.SCliqueGraph(context.Background(), name, sVal, opt.pipeline())
	return res, err
}

// SLineGraphs returns the s-line graphs of the named dataset for every
// distinct s in sValues as one batched request: cached projections are
// served as-is, and the rest run through the planner as a single pass
// (one ensemble count when its memory is affordable). Every computed
// projection is cached per s, so later SLineGraph calls hit.
// Deprecated: use Session.Execute with a multi-s Query.
func (s *Session) SLineGraphs(name string, sValues []int, opt Options) (map[int]*Result, error) {
	results, _, err := s.svc.SLineGraphs(context.Background(), name, sValues, opt.pipeline())
	return results, err
}

// SCliqueGraphs returns the s-clique graphs of the named dataset for
// every distinct s in sValues, batched and cached like SLineGraphs.
// Deprecated: use Session.Execute with a Query{Kind: KindClique}.
func (s *Session) SCliqueGraphs(name string, sValues []int, opt Options) (map[int]*Result, error) {
	results, _, err := s.svc.SCliqueGraphs(context.Background(), name, sValues, opt.pipeline())
	return results, err
}

// Warmup precomputes the s-sweep for the named dataset as one batched
// planner-driven pass and seeds the cache, so subsequent SLineGraph
// calls for any swept s are hits. It returns the number of projections
// actually computed; already-cached s values are skipped.
func (s *Session) Warmup(name string, sValues []int, opt Options) (int, error) {
	computed, _, err := s.svc.Warmup(context.Background(), name, false, sValues, opt.pipeline())
	return computed, err
}

// SMeasure evaluates a registered Stage-5 measure on the s-line graph
// of the named dataset: the projection comes from the result cache and
// the measure value from the measure cache, so a repeated measure
// request on a warmed dataset recomputes nothing. params are validated
// against the measure's schema (see Measures); unknown measures fail
// with the list of registered ones.
// Deprecated: use Session.Execute with a Query naming a Measure.
func (s *Session) SMeasure(name string, sVal int, measureName string, params map[string]string, opt Options) (*MeasureResult, error) {
	return s.svc.Measure(context.Background(), name, false, sVal, opt.pipeline(), measureName, params)
}

// SCliqueMeasure evaluates a measure on the s-clique graph (the s-line
// graph of the dual hypergraph), cached like SMeasure.
// Deprecated: use Session.Execute with a measure Query{Kind: KindClique}.
func (s *Session) SCliqueMeasure(name string, sVal int, measureName string, params map[string]string, opt Options) (*MeasureResult, error) {
	return s.svc.Measure(context.Background(), name, true, sVal, opt.pipeline(), measureName, params)
}

// SMeasureSweep evaluates one measure across an s-sweep as a single
// batched request — the library form of the paper's per-s application
// tables. Uncached projections share one planner-driven batch pass;
// each measure value is cached per s, so later SMeasure calls hit.
// Results are ordered by ascending distinct s.
// Deprecated: use Session.Execute with a multi-s measure Query.
func (s *Session) SMeasureSweep(name string, sValues []int, measureName string, params map[string]string, opt Options) ([]*MeasureResult, error) {
	return s.svc.MeasureSweep(context.Background(), name, false, sValues, opt.pipeline(), measureName, params)
}

// SCliqueMeasureSweep evaluates one measure across an s-sweep of
// s-clique graphs, batched and cached like SMeasureSweep.
// Deprecated: use Session.Execute with a measure Query{Kind: KindClique}.
func (s *Session) SCliqueMeasureSweep(name string, sValues []int, measureName string, params map[string]string, opt Options) ([]*MeasureResult, error) {
	return s.svc.MeasureSweep(context.Background(), name, true, sValues, opt.pipeline(), measureName, params)
}

// Calibration snapshots what the self-calibrating planner has measured
// for the named dataset's current version: observed Stage-3 cost per
// (strategy, relabel, toplex, batch shape) cell, per orientation. Fresh
// and freshly replaced datasets report empty tables — calibration never
// survives a version bump. Once a cell reaches core.CalibrationMin
// observations, auto-planned queries (Options.Algorithm = AlgoAuto,
// Relabel = RelabelAuto) consult it in place of the static heuristics.
func (s *Session) Calibration(name string) (CalibrationInfo, error) {
	return s.svc.Calibration(name)
}

// CacheStats snapshots the session's result-cache counters.
func (s *Session) CacheStats() CacheStats { return s.svc.CacheStats() }

// MeasureCacheStats snapshots the session's measure-cache counters.
func (s *Session) MeasureCacheStats() MeasureCacheStats { return s.svc.MeasureCacheStats() }

// AdmissionStats snapshots the session's admission controller:
// configured limits, live occupancy, and admitted/shed/queued counters.
func (s *Session) AdmissionStats() AdmissionStats { return s.svc.AdmissionStats() }

// WriteMetrics renders the session's full Prometheus text exposition —
// the same document hyperlined serves at GET /metrics: cache and
// compute counters, singleflight dedups, admission state, and
// per-stage latency histograms.
func (s *Session) WriteMetrics(w io.Writer) error { return s.svc.WriteMetrics(w) }
