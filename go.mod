module hyperline

go 1.23
